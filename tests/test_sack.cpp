// SACK (RFC 2018) tests: wire format, negotiation, receiver block
// generation (including the ft-TCP staging exclusion), selective repair,
// and behaviour under loss sweeps and through the replicated chain.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "testbed/testbed.hpp"

namespace hydranet::tcp {
namespace {

using apps::fnv1a;
using apps::ttcp_pattern;
using testutil::ip;
using testutil::Pair;

TEST(SackWire, OptionsRoundTripAndAlign) {
  net::Ipv4Address src(1, 2, 3, 4), dst(5, 6, 7, 8);
  net::TcpSegment segment;
  segment.header.src_port = 1;
  segment.header.dst_port = 2;
  segment.header.syn = true;
  segment.header.mss_option = 1460;
  segment.header.sack_permitted = true;
  Bytes wire = net::serialize_tcp(segment, src, dst);
  // Data offset must be 4-byte aligned: MSS(4) + SACK-permitted(2) + pad.
  EXPECT_EQ(wire.size() % 4, 0u);
  auto parsed = net::parse_tcp(wire, src, dst);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().header.sack_permitted);
  EXPECT_EQ(parsed.value().header.mss_option, 1460);

  net::TcpSegment with_blocks;
  with_blocks.header.src_port = 1;
  with_blocks.header.dst_port = 2;
  with_blocks.header.ack_flag = true;
  with_blocks.header.sack_blocks = {{1000, 2000}, {3000, 4000}, {5000, 6000}};
  with_blocks.payload = {1, 2, 3};
  auto reparsed = net::parse_tcp(net::serialize_tcp(with_blocks, src, dst),
                                 src, dst);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed.value().header.sack_blocks.size(), 3u);
  EXPECT_EQ(reparsed.value().header.sack_blocks[1],
            (std::pair<std::uint32_t, std::uint32_t>{3000, 4000}));
  EXPECT_EQ(reparsed.value().payload, (Bytes{1, 2, 3}));
}

TEST(SackWire, BlockCountIsCapped) {
  net::Ipv4Address src(1, 1, 1, 1), dst(2, 2, 2, 2);
  net::TcpSegment segment;
  segment.header.src_port = 1;
  segment.header.dst_port = 2;
  for (std::uint32_t i = 0; i < 8; ++i) {
    segment.header.sack_blocks.emplace_back(i * 100, i * 100 + 50);
  }
  auto parsed =
      net::parse_tcp(net::serialize_tcp(segment, src, dst), src, dst);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header.sack_blocks.size(),
            net::TcpHeader::kMaxSackBlocks);
}

TEST(SackNegotiation, RequiresBothSides) {
  auto negotiate = [](bool client_sack, bool server_sack) {
    Pair pair;
    TcpOptions server_options;
    server_options.sack = server_sack;
    std::shared_ptr<TcpConnection> server_conn;
    (void)pair.b.tcp().listen(net::Ipv4Address(), 80,
                              [&](std::shared_ptr<TcpConnection> c) {
                                server_conn = std::move(c);
                              },
                              server_options);
    TcpOptions client_options;
    client_options.sack = client_sack;
    auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                       {ip(10, 0, 0, 2), 80}, client_options);
    pair.net.run();
    return std::make_pair(client.value()->sack_negotiated(),
                          server_conn ? server_conn->sack_negotiated() : false);
  };
  EXPECT_EQ(negotiate(true, true), (std::make_pair(true, true)));
  EXPECT_EQ(negotiate(true, false), (std::make_pair(false, false)));
  EXPECT_EQ(negotiate(false, true), (std::make_pair(false, false)));
  EXPECT_EQ(negotiate(false, false), (std::make_pair(false, false)));
}

TEST(SackBlocks, IslandsAreReportedStagedPrefixIsNot) {
  ReassemblyBuffer buffer;
  Bytes chunk(100, 0xaa);
  // Contiguous prefix [0, 100) staged at base 0 (as a gated replica would
  // hold it), then islands [300,400) and [600,800).
  (void)buffer.insert(0, chunk, 0, 10000);
  (void)buffer.insert(300, chunk, 0, 10000);
  (void)buffer.insert(600, chunk, 0, 10000);
  (void)buffer.insert(700, chunk, 0, 10000);

  auto blocks = buffer.blocks_beyond(0, 4);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], (std::pair<std::uint64_t, std::uint64_t>{300, 400}));
  EXPECT_EQ(blocks[1], (std::pair<std::uint64_t, std::uint64_t>{600, 800}));

  // Cap respected.
  (void)buffer.insert(1000, chunk, 0, 10000);
  (void)buffer.insert(1200, chunk, 0, 10000);
  EXPECT_EQ(buffer.blocks_beyond(0, 2).size(), 2u);
}

TcpOptions sack_options() {
  TcpOptions options;
  options.sack = true;
  return options;
}

struct SackRun {
  std::uint64_t retransmits = 0;
  std::uint64_t sack_retransmits = 0;
  std::uint64_t timeouts = 0;
  bool exact = false;
  double seconds = 0;
};

SackRun run_with_drops(std::vector<std::uint64_t> drops, bool sack) {
  Pair pair;
  pair.link.set_loss_model(
      std::make_unique<testutil::DropNth>(std::move(drops), /*min_size=*/1000));
  TcpOptions options = sack ? sack_options() : TcpOptions{};
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80, false,
                                  options);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80},
                                     options);
  auto conn = client.value();
  const std::size_t total = 512 * 1024;
  std::size_t written = 0;
  auto pump = [&, conn] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 8192);
      Bytes chunk = ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
    if (written >= total) conn->close();
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  pair.net.run(30'000'000);

  SackRun result;
  result.retransmits = conn->stats().retransmits;
  result.sack_retransmits = conn->stats().sack_retransmits;
  result.timeouts = conn->stats().timeouts;
  result.exact = server.received.size() == total &&
                 fnv1a(server.received) == fnv1a(ttcp_pattern(total, 0));
  result.seconds = pair.net.now().seconds();
  return result;
}

TEST(SackRepair, SingleLossRepairedWithoutTimeout) {
  SackRun run = run_with_drops({25}, /*sack=*/true);
  EXPECT_TRUE(run.exact);
  EXPECT_GE(run.sack_retransmits, 1u);
  EXPECT_EQ(run.timeouts, 0u);
}

TEST(SackRepair, MultiLossWindowBeatsReno) {
  // Three losses inside one flight: Reno can only repair one per RTT (or
  // falls back to an RTO); SACK patches all the holes from the scoreboard.
  std::vector<std::uint64_t> drops{20, 23, 26};
  SackRun reno = run_with_drops(drops, /*sack=*/false);
  SackRun sack = run_with_drops(drops, /*sack=*/true);
  ASSERT_TRUE(reno.exact);
  ASSERT_TRUE(sack.exact);
  EXPECT_EQ(sack.timeouts, 0u) << "SACK should avoid the RTO entirely";
  EXPECT_LE(sack.timeouts, reno.timeouts);
  EXPECT_LT(sack.seconds, reno.seconds)
      << "SACK repair should finish sooner than Reno recovery";
}

class SackLossSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SackLossSweep, RandomLossTransfersAreExactWithSack) {
  link::Link::Config config;
  config.loss_probability = 0.06;
  config.seed = GetParam();
  Pair pair(config, 1500, GetParam() + 7);
  TcpOptions options = sack_options();
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80, false,
                                  options);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80},
                                     options);
  auto conn = client.value();
  const std::size_t total = 128 * 1024;
  std::size_t written = 0;
  auto pump = [&, conn] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 8192);
      Bytes chunk = ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
    if (written >= total) conn->close();
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  pair.net.run(30'000'000);
  ASSERT_TRUE(server.eof);
  EXPECT_EQ(fnv1a(server.received), fnv1a(ttcp_pattern(total, 0)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SackLossSweep,
                         ::testing::Values(101, 102, 103, 104, 105));

TEST(SackFt, GatedPrimaryDupAcksGenuineHolesButNotStagedData) {
  // A drop on the CLIENT link leaves a real hole at every replica: the
  // primary must emit duplicate ACKs (so the client can fast-retransmit)
  // even though its deposit gate otherwise keeps it silent.
  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 1000;  // detector out of the way
  testbed::Testbed bed(config);
  // Drop one mid-stream full-size data frame on the client link.
  bed.client_link().set_loss_model(std::make_unique<testutil::DropNth>(
      std::vector<std::uint64_t>{30}, /*min_size=*/900));

  tcp::TcpOptions options = apps::period_tcp_options();
  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port, options));
  }
  const std::size_t total = 512 * 1024;
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = total;
  tx.tcp = options;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  ASSERT_TRUE(transmitter.start().ok());
  bed.net().run_for(sim::seconds(60));

  ASSERT_TRUE(transmitter.report().finished);
  // The loss was repaired by fast retransmit — no ~1 s timeout burned.
  EXPECT_GE(transmitter.connection()->stats().fast_retransmits, 1u);
  EXPECT_EQ(transmitter.connection()->stats().timeouts, 0u);
  ASSERT_FALSE(receivers[0]->reports().empty());
  EXPECT_EQ(receivers[0]->reports().front().bytes_received, total);
  EXPECT_EQ(receivers[0]->reports().front().checksum,
            fnv1a(ttcp_pattern(total, 0)));
}

TEST(SackFt, NegotiatedThroughTheReplicatedChainAndFailover) {
  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 3;
  testbed::Testbed bed(config);

  tcp::TcpOptions options = apps::period_tcp_options();
  options.sack = true;
  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port, options));
  }
  const std::size_t total = 2 * 1024 * 1024;
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = total;
  tx.tcp = options;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  ASSERT_TRUE(transmitter.start().ok());
  bed.net().run_for(sim::seconds(2));
  EXPECT_TRUE(transmitter.connection()->sack_negotiated());
  ASSERT_FALSE(transmitter.report().finished);

  bed.crash_server(0);
  bed.net().run_for(sim::seconds(120));
  EXPECT_TRUE(transmitter.report().finished);
  bool exact = false;
  for (const auto& report : receivers[1]->reports()) {
    if (report.eof && report.bytes_received == total &&
        report.checksum == fnv1a(ttcp_pattern(total, 0))) {
      exact = true;
    }
  }
  EXPECT_TRUE(exact);
}

}  // namespace
}  // namespace hydranet::tcp
