// Unit tests for the byte-buffer reader/writer and the Internet checksum.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace hydranet {
namespace {

TEST(ByteWriter, WritesBigEndianScalars) {
  Bytes out;
  ByteWriter w(out);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ull);
  ASSERT_EQ(out.size(), 15u);
  EXPECT_EQ(out[0], 0xab);
  EXPECT_EQ(out[1], 0x12);
  EXPECT_EQ(out[2], 0x34);
  EXPECT_EQ(out[3], 0xde);
  EXPECT_EQ(out[6], 0xef);
  EXPECT_EQ(out[7], 0x01);
  EXPECT_EQ(out[14], 0x08);
}

TEST(ByteReader, RoundTripsAllScalarWidths) {
  Bytes out;
  ByteWriter w(out);
  w.u8(7);
  w.u16(65535);
  w.u32(0x89abcdef);
  w.u64(0xfedcba9876543210ull);
  w.str16("hello");

  ByteReader r(out);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0x89abcdefu);
  EXPECT_EQ(r.u64(), 0xfedcba9876543210ull);
  EXPECT_EQ(r.str16(), "hello");
  EXPECT_FALSE(r.truncated());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, OverrunSetsStickyTruncatedFlag) {
  Bytes data{1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_EQ(r.u32(), 0u);  // past the end
  EXPECT_TRUE(r.truncated());
  EXPECT_EQ(r.u8(), 0u);  // still truncated
  EXPECT_TRUE(r.truncated());
}

TEST(ByteReader, RawAndSkipRespectBounds) {
  Bytes data{1, 2, 3, 4, 5};
  ByteReader r(data);
  Bytes head = r.raw(2);
  ASSERT_EQ(head.size(), 2u);
  EXPECT_EQ(head[0], 1);
  r.skip(1);
  EXPECT_EQ(r.u8(), 4);
  Bytes overrun = r.raw(5);
  EXPECT_TRUE(overrun.empty());
  EXPECT_TRUE(r.truncated());
}

TEST(InternetChecksum, MatchesRfc1071Example) {
  // Classic example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2.
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  Bytes data{0x12, 0x34, 0x56};
  std::uint32_t sum = 0x1234 + 0x5600;
  EXPECT_EQ(internet_checksum(data),
            static_cast<std::uint16_t>(~sum & 0xffff));
}

TEST(InternetChecksum, VerificationOfSelfChecksummedBufferIsZero) {
  Bytes data{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  std::uint16_t checksum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(checksum >> 8));
  data.push_back(static_cast<std::uint8_t>(checksum & 0xff));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_EQ(ok_result.error(), Errc::ok);

  Result<int> err_result(Errc::timed_out);
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error(), Errc::timed_out);
  EXPECT_EQ(err_result.value_or(-1), -1);
}

TEST(Result, StatusDefaultsToSuccess) {
  Status status;
  EXPECT_TRUE(status.ok());
  Status failure(Errc::no_route);
  EXPECT_FALSE(failure.ok());
  EXPECT_STREQ(to_string(failure.error()), "no_route");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    auto v = rng.uniform_int(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, BernoulliRateRoughlyMatchesP) {
  Rng rng(99);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

}  // namespace
}  // namespace hydranet
