// Shared fixtures for protocol-level tests.
#pragma once

#include <memory>
#include <vector>

#include "apps/ttcp.hpp"
#include "host/network.hpp"
#include "link/loss_model.hpp"

namespace hydranet::testutil {

inline net::Ipv4Address ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                           std::uint8_t d) {
  return net::Ipv4Address(a, b, c, d);
}

/// Two hosts on one subnet: a = 10.0.0.1, b = 10.0.0.2.
struct Pair {
  host::Network net;
  host::Host& a;
  host::Host& b;
  link::Link& link;

  explicit Pair(link::Link::Config config = {}, std::size_t mtu = 1500,
                std::uint64_t seed = 1234)
      : net(seed),
        a(net.add_host("a")),
        b(net.add_host("b")),
        link(net.connect(a, ip(10, 0, 0, 1), b, ip(10, 0, 0, 2), 24, config,
                         mtu)) {}
};

/// Drops exactly the frames whose 1-based index (among frames of at least
/// `min_size` bytes) is in `targets`.  A min_size above ~100 restricts the
/// count to data segments, skipping handshake frames and pure ACKs.
class DropNth final : public link::LossModel {
 public:
  explicit DropNth(std::vector<std::uint64_t> targets,
                   std::size_t min_size = 0)
      : targets_(std::move(targets)), min_size_(min_size) {}
  bool should_drop(Rng&, std::size_t frame_size) override {
    if (frame_size < min_size_) return false;
    ++count_;
    for (std::uint64_t t : targets_) {
      if (t == count_) return true;
    }
    return false;
  }
  std::unique_ptr<link::LossModel> clone() const override {
    return std::make_unique<DropNth>(targets_, min_size_);  // count resets
  }

 private:
  std::vector<std::uint64_t> targets_;
  std::size_t min_size_;
  std::uint64_t count_ = 0;
};

/// Server that accepts one connection, stores everything received, and
/// optionally echoes it back; closes when the peer closes.  Owns its
/// listener and closes it on destruction, so tests can run several
/// sequential servers on the same port without a stale accept handler
/// pointing at a destroyed instance.
struct ByteSinkServer {
  host::Host& host;
  bool echo;
  Bytes received;
  bool eof = false;
  std::shared_ptr<tcp::TcpConnection> connection;
  tcp::TcpListener* listener = nullptr;

  ByteSinkServer(host::Host& h, net::Ipv4Address address, std::uint16_t port,
                 bool echo_back = false, tcp::TcpOptions options = {})
      : host(h), echo(echo_back) {
    auto result = host.tcp().listen(
        address, port,
        [this](std::shared_ptr<tcp::TcpConnection> conn) {
          connection = conn;
          auto* raw = conn.get();
          conn->set_on_readable([this, raw] {
            for (;;) {
              auto data = raw->recv(64 * 1024);
              if (!data) return;
              if (data.value().empty()) {
                eof = true;
                raw->close();
                return;
              }
              received.insert(received.end(), data.value().begin(),
                              data.value().end());
              if (echo) (void)raw->send(data.value());
            }
          });
        },
        options);
    if (result.ok()) listener = result.value();
  }

  ~ByteSinkServer() {
    if (listener != nullptr) listener->close();
  }

  ByteSinkServer(const ByteSinkServer&) = delete;
  ByteSinkServer& operator=(const ByteSinkServer&) = delete;
};

}  // namespace hydranet::testutil
