// TCP edge cases: sequence-number wrap-around, half-close, concurrent
// accepts, connection reaping, backpressure, early writes, aborts,
// zero-window probing, listener teardown.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hydranet::tcp {
namespace {

using apps::fnv1a;
using apps::ttcp_pattern;
using testutil::ip;
using testutil::Pair;

TEST(TcpEdge, TransferAcrossSequenceNumberWrap) {
  Pair pair;
  // Both sides start their sequence space just below 2^32 so the stream
  // crosses the wrap within a few segments.
  pair.a.tcp().set_iss_generator(
      [](const ConnectionKey&) { return 0xffffff00u; });
  pair.b.tcp().set_iss_generator(
      [](const ConnectionKey&) { return 0xfffffe80u; });

  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80,
                                  /*echo_back=*/true);
  auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                     {ip(10, 0, 0, 2), 80});
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.value()->iss(), 0xffffff00u);
  auto conn = client.value();

  const std::size_t total = 256 * 1024;  // well past the wrap point
  Bytes reply;
  std::size_t written = 0;
  auto pump = [&] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 8192);
      Bytes chunk = ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  conn->set_on_readable([&] {
    for (;;) {
      auto data = conn->recv(64 * 1024);
      if (!data || data.value().empty()) return;
      reply.insert(reply.end(), data.value().begin(), data.value().end());
      if (reply.size() >= total) conn->close();
    }
  });
  pair.net.run();
  ASSERT_EQ(reply.size(), total);
  EXPECT_EQ(fnv1a(reply), fnv1a(ttcp_pattern(total, 0)));
}

TEST(TcpEdge, WrapUnderLossStillExact) {
  link::Link::Config lossy;
  lossy.loss_probability = 0.05;
  lossy.seed = 77;
  Pair pair(lossy);
  pair.a.tcp().set_iss_generator(
      [](const ConnectionKey&) { return 0xfffffff0u; });
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                     {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  const std::size_t total = 128 * 1024;
  std::size_t written = 0;
  auto pump = [&] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 8192);
      Bytes chunk = ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
    if (written >= total) conn->close();
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  pair.net.run(20'000'000);
  ASSERT_TRUE(server.eof);
  EXPECT_EQ(fnv1a(server.received), fnv1a(ttcp_pattern(total, 0)));
}

TEST(TcpEdge, HalfCloseLetsTheServerKeepSending) {
  Pair pair;
  // Server: on EOF from the client, send a 64 KB response, then close.
  std::shared_ptr<TcpConnection> server_conn;
  const std::size_t response_size = 64 * 1024;
  std::size_t response_written = 0;
  auto server_pump = [&] {
    while (response_written < response_size) {
      std::size_t n =
          std::min<std::size_t>(response_size - response_written, 8192);
      Bytes chunk = ttcp_pattern(n, response_written);
      auto accepted = server_conn->send(chunk);
      if (!accepted) break;
      response_written += accepted.value();
    }
    if (response_written >= response_size) server_conn->close();
  };
  ASSERT_TRUE(pair.b.tcp()
                  .listen(net::Ipv4Address(), 80,
                          [&](std::shared_ptr<TcpConnection> c) {
                            server_conn = c;
                            auto* raw = c.get();
                            c->set_on_readable([&, raw] {
                              for (;;) {
                                auto data = raw->recv(4096);
                                if (!data) return;
                                if (data.value().empty()) {
                                  server_pump();  // client half-closed
                                  return;
                                }
                              }
                            });
                            c->set_on_writable(server_pump);
                          })
                  .ok());

  auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                     {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  Bytes response;
  conn->set_on_established([&] {
    Bytes request{1, 2, 3};
    (void)conn->send(request);
    conn->close();  // half-close: we are done talking, still listening
  });
  conn->set_on_readable([&] {
    for (;;) {
      auto data = conn->recv(64 * 1024);
      if (!data || data.value().empty()) return;
      response.insert(response.end(), data.value().begin(),
                      data.value().end());
    }
  });
  pair.net.run();
  ASSERT_EQ(response.size(), response_size);
  EXPECT_EQ(fnv1a(response), fnv1a(ttcp_pattern(response_size, 0)));
  EXPECT_EQ(conn->state(), TcpState::closed);
  EXPECT_EQ(server_conn->state(), TcpState::closed);
}

TEST(TcpEdge, TenConcurrentClientsAllServed) {
  Pair pair;
  struct ServerSide {
    Bytes received;
    bool eof = false;
  };
  std::vector<std::shared_ptr<TcpConnection>> server_conns;
  std::vector<std::unique_ptr<ServerSide>> sides;
  ASSERT_TRUE(pair.b.tcp()
                  .listen(net::Ipv4Address(), 80,
                          [&](std::shared_ptr<TcpConnection> c) {
                            server_conns.push_back(c);
                            sides.push_back(std::make_unique<ServerSide>());
                            ServerSide* side = sides.back().get();
                            auto* raw = c.get();
                            c->set_on_readable([side, raw] {
                              for (;;) {
                                auto data = raw->recv(16 * 1024);
                                if (!data) return;
                                if (data.value().empty()) {
                                  side->eof = true;
                                  raw->close();
                                  return;
                                }
                                side->received.insert(side->received.end(),
                                                      data.value().begin(),
                                                      data.value().end());
                              }
                            });
                          })
                  .ok());

  const int clients = 10;
  const std::size_t per_client = 20 * 1024;
  std::vector<std::shared_ptr<TcpConnection>> conns;
  for (int i = 0; i < clients; ++i) {
    auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                       {ip(10, 0, 0, 2), 80});
    ASSERT_TRUE(client.ok());
    auto conn = client.value();
    conns.push_back(conn);
    conn->set_on_established([conn, i, per_client] {
      Bytes payload = ttcp_pattern(per_client, static_cast<std::size_t>(i));
      (void)conn->send(payload);
      conn->close();
    });
  }
  pair.net.run();

  ASSERT_EQ(server_conns.size(), static_cast<std::size_t>(clients));
  std::size_t eofs = 0;
  for (const auto& side : sides) {
    if (side->eof) eofs++;
    EXPECT_EQ(side->received.size(), per_client);
  }
  EXPECT_EQ(eofs, static_cast<std::size_t>(clients));
  // Distinct client ports for every connection.
  std::set<std::uint16_t> ports;
  for (const auto& c : server_conns) ports.insert(c->key().remote.port);
  EXPECT_EQ(ports.size(), static_cast<std::size_t>(clients));
}

TEST(TcpEdge, ConnectionsAreReapedAfterClose) {
  Pair pair;
  testutil::ByteSinkServer* sink = nullptr;
  // Reuse one sink server; run 30 sequential short connections.
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  sink = &server;
  for (int i = 0; i < 30; ++i) {
    auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                       {ip(10, 0, 0, 2), 80});
    ASSERT_TRUE(client.ok());
    auto conn = client.value();
    conn->set_on_established([conn] {
      Bytes one{42};
      (void)conn->send(one);
      conn->close();
    });
    pair.net.run();
  }
  (void)sink;
  // After TIME_WAITs expire everything is reaped on both stacks.
  pair.net.run_for(sim::seconds(10));
  pair.net.run();
  EXPECT_EQ(pair.a.tcp().connection_count(), 0u);
  EXPECT_EQ(pair.b.tcp().connection_count(), 0u);
}

TEST(TcpEdge, SendBufferBackpressureAndWritableCallback) {
  Pair pair;
  TcpOptions options;
  options.send_buffer_capacity = 4096;
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80},
                                     options);
  auto conn = client.value();
  int writable_events = 0;
  bool saw_would_block = false;
  std::size_t written = 0;
  const std::size_t total = 64 * 1024;
  auto pump = [&] {
    while (written < total) {
      Bytes chunk(std::min<std::size_t>(2048, total - written), 0x2f);
      auto accepted = conn->send(chunk);
      if (!accepted) {
        EXPECT_EQ(accepted.error(), Errc::would_block);
        saw_would_block = true;
        break;
      }
      written += accepted.value();
    }
    if (written >= total) conn->close();
  };
  conn->set_on_established(pump);
  conn->set_on_writable([&] {
    writable_events++;
    pump();
  });
  pair.net.run();
  EXPECT_TRUE(saw_would_block);
  EXPECT_GT(writable_events, 0);
  EXPECT_EQ(server.received.size(), total);
}

TEST(TcpEdge, WritesBeforeEstablishedAreBufferedAndFlushed) {
  Pair pair;
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                     {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  // Still in SYN_SENT: the write lands in the send buffer and goes out
  // right after the handshake.
  Bytes early(1000, 0xee);
  auto accepted = conn->send(early);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted.value(), 1000u);
  conn->set_on_established([conn] { conn->close(); });
  pair.net.run();
  EXPECT_EQ(server.received.size(), 1000u);
  EXPECT_TRUE(server.eof);
}

TEST(TcpEdge, PeerAbortMidTransferSurfacesAsReset) {
  Pair pair;
  std::shared_ptr<TcpConnection> server_conn;
  ASSERT_TRUE(pair.b.tcp()
                  .listen(net::Ipv4Address(), 80,
                          [&](std::shared_ptr<TcpConnection> c) {
                            server_conn = std::move(c);
                          })
                  .ok());
  auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                     {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  Errc reason = Errc::ok;
  conn->set_on_closed([&](Errc e) { reason = e; });
  std::size_t written = 0;
  auto pump = [&] {
    while (written < (1u << 20)) {
      Bytes chunk(4096, 0x01);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  pair.net.run_for(sim::milliseconds(100));
  ASSERT_NE(server_conn, nullptr);
  server_conn->abort();
  pair.net.run_for(sim::seconds(2));
  EXPECT_EQ(reason, Errc::connection_reset);
  EXPECT_EQ(conn->state(), TcpState::closed);
}

TEST(TcpEdge, ZeroWindowProbesAreCountedAndRecovered) {
  Pair pair;
  TcpOptions server_options;
  server_options.recv_buffer_capacity = 1024;
  std::shared_ptr<TcpConnection> server_conn;
  ASSERT_TRUE(pair.b.tcp()
                  .listen(net::Ipv4Address(), 80,
                          [&](std::shared_ptr<TcpConnection> c) {
                            server_conn = std::move(c);
                          },
                          server_options)
                  .ok());
  auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                     {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  std::size_t written = 0;
  const std::size_t total = 8 * 1024;
  auto pump = [&] {
    while (written < total) {
      Bytes chunk(512, 0x3c);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
    if (written >= total) conn->close();
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);

  // The server app reads nothing: the window slams shut.
  pair.net.run_for(sim::seconds(5));
  EXPECT_GE(conn->stats().zero_window_probes, 1u);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_LT(server_conn->stats().bytes_received_app, total);

  // Drain and finish.
  Bytes drained;
  auto* raw = server_conn.get();
  std::function<void()> drain = [&] {
    for (;;) {
      auto data = raw->recv(512);
      if (!data || data.value().empty()) return;
      drained.insert(drained.end(), data.value().begin(), data.value().end());
    }
  };
  server_conn->set_on_readable(drain);
  drain();
  for (int i = 0; i < 200 && drained.size() < total; ++i) {
    pair.net.run_for(sim::milliseconds(100));
    drain();
  }
  EXPECT_EQ(drained.size(), total);
}

TEST(TcpEdge, ListenerCloseLeavesEstablishedConnectionsAlive) {
  Pair pair;
  std::shared_ptr<TcpConnection> server_conn;
  auto listener = pair.b.tcp().listen(
      net::Ipv4Address(), 80,
      [&](std::shared_ptr<TcpConnection> c) { server_conn = std::move(c); });
  ASSERT_TRUE(listener.ok());

  auto first = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  pair.net.run();
  ASSERT_NE(server_conn, nullptr);

  listener.value()->close();

  // New connections are now refused...
  auto second = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  Errc second_reason = Errc::ok;
  second.value()->set_on_closed([&](Errc e) { second_reason = e; });
  pair.net.run();
  EXPECT_EQ(second_reason, Errc::connection_refused);

  // ...but the first connection still works.
  Bytes ping{7};
  ASSERT_TRUE(first.value()->send(ping).ok());
  pair.net.run();
  auto got = server_conn->recv(16);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), ping);
}

TEST(TcpEdge, SendAndRecvOnClosedConnectionFailCleanly) {
  Pair pair;
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  conn->set_on_established([conn] { conn->close(); });
  pair.net.run();
  ASSERT_EQ(conn->state(), TcpState::closed);
  Bytes data{1};
  EXPECT_FALSE(conn->send(data).ok());
  auto r = conn->recv(10);
  // Either EOF (empty) or closed, never data.
  if (r.ok()) {
    EXPECT_TRUE(r.value().empty());
  }
}

TEST(TcpEdge, NagleStillFlushesFinalShortSegmentOnClose) {
  link::Link::Config slow;
  slow.propagation = sim::milliseconds(20);
  Pair pair(slow);
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  TcpOptions options;  // Nagle ON
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80},
                                     options);
  auto conn = client.value();
  conn->set_on_established([&] {
    // Two small writes in quick succession, then close: Nagle may hold
    // the second briefly, but close() must flush everything.
    Bytes one(100, 1);
    Bytes two(100, 2);
    (void)conn->send(one);
    (void)conn->send(two);
    conn->close();
  });
  pair.net.run();
  EXPECT_EQ(server.received.size(), 200u);
  EXPECT_TRUE(server.eof);
}

}  // namespace
}  // namespace hydranet::tcp
