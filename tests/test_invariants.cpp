// Protocol-invariant checker tests (DESIGN.md §9).
//
// Two halves:
//   * negative coverage — deliberately corrupt state through the gated
//     test hooks and assert that exactly the right HN_INVARIANT category
//     fires (under a ScopedCollector, so nothing aborts);
//   * positive coverage — a healthy ft-TCP transfer (including a manual
//     fail-over) reports zero violations, and the counters surface in the
//     stats registry under node `verify`.
#include <gtest/gtest.h>

#include <variant>

#include "common/packet_buffer.hpp"
#include "common/result.hpp"
#include "ftcp/ack_channel.hpp"
#include "ftcp/replicated_service.hpp"
#include "redirector/redirector.hpp"
#include "sim/scheduler.hpp"
#include "test_util.hpp"
#include "verify/invariant.hpp"

namespace hydranet::verify {
namespace {

using apps::fnv1a;
using apps::ttcp_pattern;
using testutil::ip;

/// Per-test isolation: the checker's counters and the backup-emission
/// taint registry are process-global.
class InvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_counters();
    clear_backup_emissions();
  }
  void TearDown() override {
    reset_counters();
    clear_backup_emissions();
  }
};

TEST_F(InvariantTest, CategoryNamesAreStable) {
  EXPECT_STREQ(to_string(Category::gate_deposit), "gate_deposit");
  EXPECT_STREQ(to_string(Category::result_access), "result_access");
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    auto category = static_cast<Category>(i);
    std::string metric = metric_name(category);
    // Every metric name is `invariant.violations.<short name>`, which is
    // what DESIGN.md §8 catalogues and network.cpp publishes.
    EXPECT_EQ(metric, std::string("invariant.violations.") +
                          to_string(category));
  }
}

TEST_F(InvariantTest, CollectorRecordsInsteadOfAborting) {
  ScopedCollector collector;
  report(Category::sched_order, __FILE__, __LINE__, "forced", "detail %d", 7);
  ASSERT_EQ(collector.violations().size(), 1u);
  EXPECT_EQ(collector.violations()[0].category, Category::sched_order);
  EXPECT_EQ(collector.violations()[0].condition, "forced");
  EXPECT_EQ(collector.violations()[0].message, "detail 7");
  EXPECT_EQ(violation_count(Category::sched_order), 1u);
  EXPECT_EQ(total_violations(), 1u);
}

TEST_F(InvariantTest, NestedCollectorsRestoreTheOuterSink) {
  ScopedCollector outer;
  {
    ScopedCollector inner;
    report(Category::sched_order, __FILE__, __LINE__, "inner", "inner");
    EXPECT_EQ(inner.count(Category::sched_order), 1u);
  }
  report(Category::sched_order, __FILE__, __LINE__, "outer", "outer");
  EXPECT_EQ(outer.count(Category::sched_order), 1u);
}

#if HYDRANET_INVARIANTS

TEST_F(InvariantTest, ResultValueOnErrorFiresResultAccess) {
  ScopedCollector collector;
  Result<int> failed(Errc::timed_out);
  EXPECT_THROW((void)failed.value(), std::bad_variant_access);
  ASSERT_EQ(collector.count(Category::result_access), 1u);
  EXPECT_NE(collector.violations()[0].message.find("timed_out"),
            std::string::npos);
  EXPECT_EQ(total_violations(), 1u);
}

TEST_F(InvariantTest, ErrorResultConstructedWithOkFiresResultAccess) {
  ScopedCollector collector;
  Result<int> bogus(Errc::ok);
  EXPECT_EQ(collector.count(Category::result_access), 1u);
}

TEST_F(InvariantTest, ChainedBufferSliceFiresBufferAlias) {
  ScopedCollector collector;
  PacketBuffer chained =
      PacketBuffer::chain(Bytes{1, 2}, PacketBuffer(Bytes{3, 4}));
  (void)chained.slice(0, 1);
  EXPECT_GE(collector.count(Category::buffer_alias), 1u);
}

TEST_F(InvariantTest, OutOfRangeSliceFiresBufferAliasAndClamps) {
  ScopedCollector collector;
  PacketBuffer buffer(Bytes{1, 2, 3, 4});
  PacketBuffer clamped = buffer.slice(2, 10);
  EXPECT_EQ(collector.count(Category::buffer_alias), 1u);
  // After the (non-fatal) report the slice is clamped to the backing run.
  EXPECT_EQ(clamped.size(), 2u);
}

TEST_F(InvariantTest, SchedulerTimeRegressionFiresSchedOrder) {
  sim::Scheduler scheduler;
  ScopedCollector collector;
  scheduler.check_execution(sim::TimePoint{100}, 1);
  EXPECT_EQ(collector.count(Category::sched_order), 0u);
  scheduler.check_execution(sim::TimePoint{50}, 2);
  EXPECT_EQ(collector.count(Category::sched_order), 1u);
}

TEST_F(InvariantTest, SchedulerFifoTieBreakFiresSchedOrder) {
  sim::Scheduler scheduler;
  ScopedCollector collector;
  scheduler.check_execution(sim::TimePoint{100}, 5);
  // Same fire time, lower seq: a later-scheduled event overtook an
  // earlier one.
  scheduler.check_execution(sim::TimePoint{100}, 3);
  EXPECT_EQ(collector.count(Category::sched_order), 1u);
}

TEST_F(InvariantTest, CorruptRedirectorTableFiresRedirectorTable) {
  host::Network net(7);
  host::Host& rd = net.add_host("rd");
  redirector::Redirector redirector(rd);
  net::Endpoint service{ip(192, 20, 225, 20), 5001};
  redirector.install_service(service, redirector::ServiceMode::fault_tolerant,
                             ip(10, 0, 2, 2));
  ASSERT_TRUE(redirector.add_backup(service, ip(10, 0, 3, 2)).ok());
  EXPECT_EQ(total_violations(), 0u);  // the healthy table passes

  ScopedCollector collector;
  redirector.test_corrupt_table(service);
  EXPECT_EQ(collector.count(Category::redirector_table), 1u);
}

/// client -- rd -- {s1..sN} ft-TCP chain with echo services, wired
/// manually (a trimmed copy of test_ftcp.cpp's fixture).
struct FtFixture {
  static constexpr std::uint16_t kPort = 5001;

  host::Network net;
  host::Host& client;
  host::Host& rd;
  redirector::Redirector redirector;
  net::Endpoint service{ip(192, 20, 225, 20), kPort};

  struct Server {
    host::Host* host;
    std::unique_ptr<ftcp::AckChannel> channel;
    std::unique_ptr<ftcp::ReplicatedService> replica;
    std::shared_ptr<tcp::TcpConnection> conn;
    Bytes echo_backlog;
    bool saw_eof = false;
  };
  std::vector<Server> servers;

  explicit FtFixture(int replica_count, std::uint64_t seed = 99)
      : net(seed),
        client(net.add_host("client")),
        rd(net.add_host("rd")),
        redirector(rd) {
    net.connect(client, ip(10, 0, 1, 2), rd, ip(10, 0, 1, 1), 24);
    client.ip().add_default_route(ip(10, 0, 1, 1), nullptr);

    for (int i = 0; i < replica_count; ++i) {
      auto& host = net.add_host("s" + std::to_string(i + 1));
      auto subnet = static_cast<std::uint8_t>(2 + i);
      net.connect(rd, ip(10, 0, subnet, 1), host, ip(10, 0, subnet, 2), 24);
      host.ip().add_default_route(ip(10, 0, subnet, 1), nullptr);

      Server server;
      server.host = &host;
      server.channel = std::make_unique<ftcp::AckChannel>(host);
      ftcp::ReplicatedService::Config config;
      config.service = service;
      config.mode =
          i == 0 ? tcp::ReplicaMode::primary : tcp::ReplicaMode::backup;
      server.replica = std::make_unique<ftcp::ReplicatedService>(
          host, *server.channel, config);
      servers.push_back(std::move(server));
    }

    redirector.install_service(service,
                               redirector::ServiceMode::fault_tolerant,
                               address_of(0));
    for (int i = 1; i < replica_count; ++i) {
      (void)redirector.add_backup(service, address_of(i));
    }
    for (int i = 0; i < replica_count; ++i) {
      if (i > 0) servers[i].replica->set_predecessor(address_of(i - 1));
      if (i + 1 < replica_count) {
        servers[i].replica->set_successor(address_of(i + 1));
      }
    }

    for (int i = 0; i < replica_count; ++i) {
      Server* server = &servers[static_cast<std::size_t>(i)];
      (void)server->host->tcp().listen(
          service.address, kPort,
          [server](std::shared_ptr<tcp::TcpConnection> conn) {
            server->conn = conn;
            server->echo_backlog.clear();
            server->saw_eof = false;
            auto* raw = conn.get();
            auto flush = [server, raw] {
              while (!server->echo_backlog.empty()) {
                auto n = raw->send(server->echo_backlog);
                if (!n) return;
                server->echo_backlog.erase(
                    server->echo_backlog.begin(),
                    server->echo_backlog.begin() +
                        static_cast<std::ptrdiff_t>(n.value()));
              }
              if (server->saw_eof) raw->close();
            };
            conn->set_on_writable(flush);
            conn->set_on_readable([server, raw, flush] {
              for (;;) {
                auto data = raw->recv(64 * 1024);
                if (!data) return;
                if (data.value().empty()) {
                  server->saw_eof = true;
                  if (server->echo_backlog.empty()) raw->close();
                  return;
                }
                server->echo_backlog.insert(server->echo_backlog.end(),
                                            data.value().begin(),
                                            data.value().end());
                flush();
              }
            });
          });
    }
  }

  net::Ipv4Address address_of(int index) const {
    return ip(10, 0, static_cast<std::uint8_t>(2 + index), 2);
  }
};

/// Drives `total` echoed bytes through `fx`'s service from a fresh client
/// connection; returns the client connection (closed when the echo
/// completed).
std::shared_ptr<tcp::TcpConnection> run_echo_transfer(
    FtFixture& fx, std::size_t total, Bytes* reply_out = nullptr,
    sim::Duration run_time = sim::seconds(30)) {
  auto client = fx.client.tcp().connect(net::Ipv4Address(), fx.service);
  EXPECT_TRUE(client.ok());
  auto conn = client.value();
  auto reply = std::make_shared<Bytes>();
  auto written = std::make_shared<std::size_t>(0);
  auto pump = [conn, written, total] {
    while (*written < total) {
      std::size_t n = std::min<std::size_t>(total - *written, 4096);
      Bytes chunk = ttcp_pattern(n, *written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      *written += accepted.value();
    }
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  conn->set_on_readable([conn, reply, total] {
    for (;;) {
      auto data = conn->recv(64 * 1024);
      if (!data || data.value().empty()) return;
      reply->insert(reply->end(), data.value().begin(), data.value().end());
      if (reply->size() >= total) conn->close();
    }
  });
  fx.net.run_for(run_time);
  if (reply_out != nullptr) *reply_out = *reply;
  return conn;
}

TEST_F(InvariantTest, ForcedBackupEmissionFiresBackupSilence) {
  FtFixture fx(2);
  ScopedCollector collector;
  fx.servers[1].replica->test_force_emission(true);
  run_echo_transfer(fx, 20000);
  // Every segment the backup pushed onto the wire is a violation.
  EXPECT_GE(collector.count(Category::backup_silence), 1u);
  // The emissions tainted the flow, so the redirector flagged the leaked
  // segments on their way to the client as well.
  EXPECT_GE(collector.count(Category::backup_leak), 1u);
}

TEST_F(InvariantTest, TaintedServiceFlowFiresBackupLeakAtTheRedirector) {
  FtFixture fx(2);
  // Simulate the taint alone (as if a backup had emitted out of band):
  // even perfectly healthy primary traffic for the flow must now be
  // flagged when it transits the redirector client-ward.
  mark_backup_emission(
      flow_key(fx.service.address.value(), fx.service.port));
  ScopedCollector collector;
  run_echo_transfer(fx, 5000);
  EXPECT_GE(collector.count(Category::backup_leak), 1u);
  // No replica actually emitted out of turn.
  EXPECT_EQ(collector.count(Category::backup_silence), 0u);
}

TEST_F(InvariantTest, StaleGateCacheFiresGateDepositAndGateSend) {
  FtFixture fx(2);
  const std::size_t total = 600000;
  auto client = fx.client.tcp().connect(net::Ipv4Address(), fx.service);
  ASSERT_TRUE(client.ok());
  auto conn = client.value();
  Bytes reply;
  std::size_t written = 0;
  auto pump = [&] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 4096);
      Bytes chunk = ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  conn->set_on_readable([&] {
    for (;;) {
      auto data = conn->recv(64 * 1024);
      if (!data || data.value().empty()) return;
      reply.insert(reply.end(), data.value().begin(), data.value().end());
      if (reply.size() >= total) conn->close();
    }
  });

  // Reach steady state with the chain healthy: the fast path is engaged
  // and the gates bind only by the ack-channel report lag.
  fx.net.run_for(sim::milliseconds(200));
  ASSERT_NE(fx.servers[0].conn, nullptr);
  EXPECT_EQ(total_violations(), 0u);

  // Forge an unbounded cached gate snapshot on the primary's connection,
  // re-forging on a timer because any authoritative (slow-path) deposit
  // legitimately repairs the cache.  While forged, the fast path deposits
  // and transmits ahead of the successor's reported marks — the stale
  // cache overrun check_gate_invariants() re-derives and catches.
  ScopedCollector collector;
  std::function<void()> corrupt = [&] {
    if (conn->state() == tcp::TcpState::closed) return;
    if (fx.servers[0].conn != nullptr &&
        fx.servers[0].conn->state() == tcp::TcpState::established) {
      fx.servers[0].conn->test_corrupt_gate_cache();
    }
    fx.net.scheduler().schedule_after(sim::microseconds(200), corrupt);
  };
  corrupt();
  fx.net.run_for(sim::seconds(10));

  EXPECT_GE(collector.count(Category::gate_deposit), 1u);
  EXPECT_GE(collector.count(Category::gate_send), 1u);
}

TEST_F(InvariantTest, OutOfWindowDepositFiresTcpStream) {
  testutil::Pair pair;
  testutil::ByteSinkServer server(pair.b, ip(10, 0, 0, 2), 7000);
  auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                     {ip(10, 0, 0, 2), 7000});
  ASSERT_TRUE(client.ok());
  pair.net.run_for(sim::seconds(1));
  ASSERT_EQ(client.value()->state(), tcp::TcpState::established);

  ScopedCollector collector;
  // Fabricate a deposit past the whole receive-buffer grant.
  client.value()->test_deposit_out_of_window(128 * 1024);
  EXPECT_EQ(collector.count(Category::tcp_stream), 1u);
}

TEST_F(InvariantTest, CleanFtTransferAndFailoverReportZeroViolations) {
  // No collector: a violation would hit the abort sink and fail loudly.
  FtFixture fx(2, /*seed=*/51);
  const std::size_t total = 600000;
  auto client = fx.client.tcp().connect(net::Ipv4Address(), fx.service);
  ASSERT_TRUE(client.ok());
  auto conn = client.value();
  Bytes reply;
  std::size_t written = 0;
  auto pump = [&] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 4096);
      Bytes chunk = ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  conn->set_on_readable([&] {
    for (;;) {
      auto data = conn->recv(64 * 1024);
      if (!data || data.value().empty()) return;
      reply.insert(reply.end(), data.value().begin(), data.value().end());
      if (reply.size() >= total) conn->close();
    }
  });

  // Mid-transfer fail-over, the scenario the checks were built to patrol.
  fx.net.run_for(sim::milliseconds(200));
  ASSERT_GT(reply.size(), 0u);
  ASSERT_LT(reply.size(), total);
  fx.servers[0].host->crash();
  fx.net.run_for(sim::milliseconds(100));
  ASSERT_TRUE(fx.redirector.set_primary(fx.service, fx.address_of(1)).ok());
  (void)fx.redirector.remove_replica(fx.service, fx.address_of(0));
  fx.servers[1].replica->set_predecessor(std::nullopt);
  fx.servers[1].replica->promote_to_primary();
  fx.net.run_for(sim::seconds(30));

  ASSERT_EQ(reply.size(), total);
  EXPECT_EQ(fnv1a(reply), fnv1a(ttcp_pattern(total, 0)));
  EXPECT_EQ(conn->state(), tcp::TcpState::closed);
  EXPECT_EQ(total_violations(), 0u);

  // The counters surface in the stats registry under node `verify`.
  fx.net.publish_metrics();
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    auto category = static_cast<Category>(i);
    EXPECT_EQ(fx.net.metrics().counter_value("verify", metric_name(category)),
              0u)
        << metric_name(category);
  }
}

#endif  // HYDRANET_INVARIANTS

}  // namespace
}  // namespace hydranet::verify
