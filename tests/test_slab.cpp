// SlabArena semantics: page growth, LIFO slot recycling, live-object
// iteration per page, counter accounting, and deleters outliving the
// arena handle (the deferred-destruction pattern the TCP stack uses).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/slab.hpp"

namespace hydranet {
namespace {

struct Tracked {
  explicit Tracked(int v) : value(v) { ++alive; }
  ~Tracked() { --alive; }
  int value;
  static int alive;
};
int Tracked::alive = 0;

TEST(SlabArena, GrowsByPagesAndRecyclesSlots) {
  const SlabCounters before = slab_counters();
  SlabArena<Tracked> arena;
  EXPECT_EQ(arena.page_count(), 0u);

  std::vector<std::shared_ptr<Tracked>> held;
  for (int i = 0; i < 65; ++i) {
    held.push_back(arena.create_shared(nullptr, i));
  }
  EXPECT_EQ(arena.page_count(), 2u);  // 65 objects span two 64-slot pages
  EXPECT_EQ(arena.live(), 65u);
  EXPECT_EQ(Tracked::alive, 65);
  EXPECT_EQ(slab_counters().pages - before.pages, 2u);
  EXPECT_GE(slab_counters().bytes - before.bytes,
            2u * SlabArena<Tracked>::kPageSlots * sizeof(Tracked));
  EXPECT_EQ(slab_counters().bytes - before.bytes, arena.bytes_reserved());

  // Retire one object: its slot must be the next one handed out (LIFO),
  // without growing a page.
  std::uint32_t freed_slot = 0;
  {
    std::uint32_t slot = 0;
    auto obj = arena.create_shared(&slot, 1000);
    freed_slot = slot;
  }
  const std::uint64_t recycled_before = slab_counters().recycled;
  std::uint32_t reused_slot = 0;
  auto obj = arena.create_shared(&reused_slot, 2000);
  EXPECT_EQ(reused_slot, freed_slot);
  EXPECT_EQ(obj->value, 2000);
  EXPECT_EQ(slab_counters().recycled, recycled_before + 1);
  EXPECT_EQ(arena.page_count(), 2u);
}

TEST(SlabArena, ForEachLiveVisitsExactlyTheLiveSlots) {
  SlabArena<Tracked> arena;
  std::vector<std::shared_ptr<Tracked>> held;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 10; ++i) {
    std::uint32_t slot = 0;
    held.push_back(arena.create_shared(&slot, i));
    slots.push_back(slot);
  }
  held[3].reset();
  held[7].reset();

  std::vector<int> seen;
  arena.for_each_live_in_page(0, [&](Tracked& t, std::uint32_t) {
    seen.push_back(t.value);
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 4, 5, 6, 8, 9}));
}

TEST(SlabArena, ObjectsOutliveTheArenaHandle) {
  std::shared_ptr<Tracked> survivor;
  SlabArena<Tracked>::UniquePtr unique_survivor;
  {
    SlabArena<Tracked> arena;
    survivor = arena.create_shared(nullptr, 7);
    unique_survivor = arena.create_unique(8);
  }
  // The arena handle is gone; the page is pinned by the deleters.
  EXPECT_EQ(survivor->value, 7);
  EXPECT_EQ(unique_survivor->value, 8);
  const std::uint64_t live_before = slab_counters().live;
  survivor.reset();
  unique_survivor.reset();
  EXPECT_EQ(slab_counters().live, live_before - 2);
}

TEST(SlabArena, CountersBalanceAfterChurn) {
  const SlabCounters before = slab_counters();
  {
    SlabArena<Tracked> arena;
    for (int round = 0; round < 100; ++round) {
      auto a = arena.create_shared(nullptr, round);
      auto b = arena.create_unique(round);
    }
    EXPECT_EQ(arena.page_count(), 1u);  // churn never grows past one page
  }
  const SlabCounters after = slab_counters();
  EXPECT_EQ(after.live, before.live);
  EXPECT_EQ(after.pages, before.pages);
  EXPECT_EQ(after.bytes, before.bytes);
  EXPECT_EQ(after.allocated - before.allocated, 200u);
  EXPECT_EQ(after.freed - before.freed, 200u);
  EXPECT_EQ(after.recycled - before.recycled, 198u);
}

}  // namespace
}  // namespace hydranet
