// Packet-trace tests: frame decoding (plain, tunnelled, fragmented),
// filtering, capture bounds — and a protocol-level assertion built on the
// trace: the ft-TCP wire discipline (only the primary's packets appear on
// the client's link).
#include <gtest/gtest.h>

#include "ftcp/ack_channel.hpp"
#include "net/tunnel.hpp"
#include "net/udp_header.hpp"
#include "redirector/redirector.hpp"
#include "test_util.hpp"
#include "testbed/testbed.hpp"
#include "trace/packet_trace.hpp"

namespace hydranet::trace {
namespace {

using testutil::ip;
using testutil::Pair;

TEST(TraceDecode, PlainTcpSegment) {
  net::TcpSegment segment;
  segment.header.src_port = 40000;
  segment.header.dst_port = 80;
  segment.header.seq = 1111;
  segment.header.ack = 2222;
  segment.header.ack_flag = true;
  segment.header.psh = true;
  segment.header.window = 4096;
  segment.payload = {1, 2, 3};
  net::Datagram datagram;
  datagram.header.protocol = net::IpProto::tcp;
  datagram.header.src = ip(10, 0, 1, 2);
  datagram.header.dst = ip(192, 20, 225, 20);
  datagram.payload = net::serialize_tcp(segment, datagram.header.src,
                                        datagram.header.dst);

  auto entry = decode_frame(datagram.serialize());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->src, ip(10, 0, 1, 2));
  EXPECT_EQ(entry->dst, ip(192, 20, 225, 20));
  EXPECT_EQ(entry->protocol, net::IpProto::tcp);
  EXPECT_EQ(entry->src_port, 40000);
  EXPECT_EQ(entry->dst_port, 80);
  EXPECT_EQ(entry->tcp_flags, "PA");
  EXPECT_EQ(entry->seq, 1111u);
  EXPECT_EQ(entry->ack, 2222u);
  EXPECT_EQ(entry->payload_bytes, 3u);
  EXPECT_FALSE(entry->tunnelled);
  // Human-readable line contains the essentials.
  std::string line = entry->to_string();
  EXPECT_NE(line.find("10.0.1.2:40000"), std::string::npos);
  EXPECT_NE(line.find("TCP"), std::string::npos);
  EXPECT_NE(line.find("seq=1111"), std::string::npos);
}

TEST(TraceDecode, TunnelledDatagramIsUnwrapped) {
  net::Datagram inner;
  inner.header.protocol = net::IpProto::udp;
  inner.header.src = ip(10, 0, 1, 2);
  inner.header.dst = ip(192, 20, 225, 20);
  inner.payload = net::serialize_udp({.src_port = 5, .dst_port = 7}, {},
                                     inner.header.src, inner.header.dst);
  inner.header.total_length = static_cast<std::uint16_t>(inner.size());
  net::Datagram outer =
      net::encapsulate_ipip(inner, ip(10, 0, 1, 1), ip(10, 0, 2, 2));

  auto entry = decode_frame(outer.serialize());
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->tunnelled);
  EXPECT_EQ(entry->tunnel_dst, ip(10, 0, 2, 2));
  EXPECT_EQ(entry->dst, ip(192, 20, 225, 20));  // inner addresses win
  EXPECT_EQ(entry->src_port, 5);
  EXPECT_EQ(entry->dst_port, 7);
}

TEST(TraceDecode, GarbageReturnsNullopt) {
  Bytes junk{1, 2, 3, 4, 5, 6};
  EXPECT_FALSE(decode_frame(junk).has_value());
}

TEST(TraceFilterTest, MatchesByProtocolHostAndPort) {
  TraceEntry entry;
  entry.src = ip(10, 0, 0, 1);
  entry.dst = ip(10, 0, 0, 2);
  entry.protocol = net::IpProto::tcp;
  entry.src_port = 1234;
  entry.dst_port = 80;

  EXPECT_TRUE(TraceFilter{}.matches(entry));
  {
    TraceFilter f;
    f.protocol = net::IpProto::tcp;
    EXPECT_TRUE(f.matches(entry));
  }
  {
    TraceFilter f;
    f.protocol = net::IpProto::udp;
    EXPECT_FALSE(f.matches(entry));
  }
  {
    TraceFilter f;
    f.host = ip(10, 0, 0, 2);
    EXPECT_TRUE(f.matches(entry));
  }
  {
    TraceFilter f;
    f.host = ip(9, 9, 9, 9);
    EXPECT_FALSE(f.matches(entry));
  }
  {
    TraceFilter f;
    f.port = 80;
    EXPECT_TRUE(f.matches(entry));
  }
  {
    TraceFilter f;
    f.port = 81;
    EXPECT_FALSE(f.matches(entry));
  }
}

TEST(TraceCapture, RecordsHandshakeInOrder) {
  Pair pair;
  PacketTrace capture(pair.net.scheduler());
  capture.attach(pair.link, "ab");

  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  conn->set_on_established([conn] { conn->close(); });
  pair.net.run();

  ASSERT_GE(capture.entries().size(), 3u);
  EXPECT_EQ(capture.entries()[0].tcp_flags, "S");
  EXPECT_EQ(capture.entries()[1].tcp_flags, "SA");
  // The handshake-completing ACK may carry the immediate FIN ("FA").
  EXPECT_NE(capture.entries()[2].tcp_flags.find('A'), std::string::npos);
  // Timestamps are monotone.
  for (std::size_t i = 1; i < capture.entries().size(); ++i) {
    EXPECT_LE(capture.entries()[i - 1].at.ns, capture.entries()[i].at.ns);
  }
}

TEST(TraceCapture, CapacityBoundsAreEnforced) {
  Pair pair;
  PacketTrace capture(pair.net.scheduler(), /*max_entries=*/10);
  capture.attach(pair.link, "ab");
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  conn->set_on_established([conn] {
    Bytes big(32 * 1024, 0x11);
    (void)conn->send(big);
    conn->close();
  });
  pair.net.run();
  EXPECT_EQ(capture.entries().size(), 10u);
  EXPECT_GT(capture.dropped(), 0u);
}

TEST(TraceCapture, ClearResetsEntriesAndDropCount) {
  Pair pair;
  PacketTrace capture(pair.net.scheduler(), /*max_entries=*/5);
  capture.attach(pair.link, "ab");
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  conn->set_on_established([conn] {
    Bytes big(32 * 1024, 0x22);
    (void)conn->send(big);
    conn->close();
  });
  pair.net.run();
  ASSERT_EQ(capture.entries().size(), 5u);
  ASSERT_GT(capture.dropped(), 0u);

  capture.clear();
  EXPECT_TRUE(capture.entries().empty());
  // clear() starts a fresh capture: the drop count resets with it.
  EXPECT_EQ(capture.dropped(), 0u);
}

TEST(TracePcap, WritesWiresharkReadableFile) {
  Pair pair;
  PacketTrace capture(pair.net.scheduler());
  capture.set_keep_frames(true);
  capture.attach(pair.link, "ab");
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  client.value()->set_on_established([c = client.value()] { c->close(); });
  pair.net.run();
  ASSERT_GE(capture.entries().size(), 3u);

  const std::string path = ::testing::TempDir() + "hydranet_trace_test.pcap";
  ASSERT_TRUE(capture.write_pcap(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  auto u32 = [&] {
    std::uint32_t v = 0;
    EXPECT_EQ(std::fread(&v, sizeof v, 1, f), 1u);
    return v;
  };
  auto u16 = [&] {
    std::uint16_t v = 0;
    EXPECT_EQ(std::fread(&v, sizeof v, 1, f), 1u);
    return v;
  };
  EXPECT_EQ(u32(), 0xa1b2c3d4u);  // classic pcap magic, our byte order
  EXPECT_EQ(u16(), 2u);           // version 2.4
  EXPECT_EQ(u16(), 4u);
  u32();                          // thiszone
  u32();                          // sigfigs
  EXPECT_EQ(u32(), 65535u);       // snaplen
  EXPECT_EQ(u32(), 101u);         // LINKTYPE_RAW

  // Every record must be a parseable bare IPv4 datagram whose length
  // matches its header, and timestamps must be monotone.
  std::size_t records = 0;
  std::uint64_t last_us = 0;
  while (true) {
    std::uint32_t ts_sec = 0;
    if (std::fread(&ts_sec, sizeof ts_sec, 1, f) != 1) break;
    std::uint32_t ts_usec = u32();
    std::uint32_t incl = u32();
    std::uint32_t orig = u32();
    EXPECT_EQ(incl, orig);
    Bytes frame(incl);
    ASSERT_EQ(std::fread(frame.data(), 1, incl, f), incl);
    EXPECT_TRUE(decode_frame(frame).has_value());
    std::uint64_t us = static_cast<std::uint64_t>(ts_sec) * 1'000'000 + ts_usec;
    EXPECT_GE(us, last_us);
    last_us = us;
    records++;
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(records, capture.entries().size());
}

TEST(TracePcap, RefusesWithoutKeptFrames) {
  Pair pair;
  PacketTrace capture(pair.net.scheduler());  // keep_frames off
  capture.attach(pair.link, "ab");
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  client.value()->set_on_established([c = client.value()] { c->close(); });
  pair.net.run();
  ASSERT_FALSE(capture.entries().empty());
  EXPECT_FALSE(capture.write_pcap(::testing::TempDir() + "nope.pcap").ok());
}

TEST(TraceCapture, SelectAndDump) {
  Pair pair;
  PacketTrace capture(pair.net.scheduler());
  capture.attach(pair.link, "ab");
  testutil::ByteSinkServer tcp_server(pair.b, net::Ipv4Address(), 80);
  auto udp_server = pair.b.udp().bind(net::Ipv4Address(), 9000);
  ASSERT_TRUE(udp_server.ok());
  auto udp_client = pair.a.udp().bind(net::Ipv4Address(), 0);
  Bytes hello{1};
  (void)udp_client.value()->send_to({ip(10, 0, 0, 2), 9000}, hello);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  client.value()->set_on_established([c = client.value()] { c->close(); });
  pair.net.run();

  TraceFilter udp_filter;
  udp_filter.protocol = net::IpProto::udp;
  auto udp_only = capture.select(udp_filter);
  ASSERT_EQ(udp_only.size(), 1u);
  EXPECT_EQ(udp_only[0].dst_port, 9000);
  TraceFilter tcp_filter;
  tcp_filter.protocol = net::IpProto::tcp;
  auto tcp_only = capture.select(tcp_filter);
  EXPECT_GE(tcp_only.size(), 3u);
  EXPECT_EQ(udp_only.size() + tcp_only.size(), capture.entries().size());

  std::string dump = capture.dump();
  EXPECT_NE(dump.find("UDP"), std::string::npos);
  EXPECT_NE(dump.find("TCP"), std::string::npos);
}

// The wire-discipline check the backup-silence rule deserves: on the
// client's access link, every server->client packet originates from the
// service address via the primary — none from the backup, ever.
TEST(TraceFtWireDiscipline, OnlyPrimaryTrafficOnTheClientLink) {
  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 2;
  testbed::Testbed bed(config);

  PacketTrace capture(bed.scheduler());
  capture.attach(bed.client_link(), "c-rd");

  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port));
  }
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = 128 * 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  ASSERT_TRUE(transmitter.start().ok());
  bed.net().run_for(sim::seconds(30));
  ASSERT_TRUE(transmitter.report().finished);

  std::size_t toward_client = 0;
  for (const TraceEntry& entry : capture.entries()) {
    if (entry.dst == ip(10, 0, 1, 2)) {
      toward_client++;
      // Single service access point: everything the client hears comes
      // from the service address/port, nothing else (no replica-host
      // addresses, no ack-channel traffic, no management traffic).
      EXPECT_EQ(entry.src, config.service.address);
      EXPECT_EQ(entry.src_port, config.service.port);
      EXPECT_EQ(entry.protocol, net::IpProto::tcp);
    }
  }
  EXPECT_GT(toward_client, 0u);
}

}  // namespace
}  // namespace hydranet::trace
