// Testbed construction tests, plus a regression guard on the Figure 4
// throughput *shape* (the reproduction's headline result).
#include <gtest/gtest.h>

#include "apps/ttcp.hpp"
#include "testbed/testbed.hpp"

namespace hydranet::testbed {
namespace {

using apps::fnv1a;
using apps::ttcp_pattern;

double measure(Setup setup, std::size_t write_size, std::size_t total,
               int backups = 1) {
  TestbedConfig config;
  config.setup = setup;
  config.backups = backups;
  Testbed bed(config);
  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port));
  }
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = total;
  tx.write_size = write_size;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  if (!transmitter.start().ok()) return 0;
  bed.net().run_for(sim::seconds(300));
  double best = 0;
  for (auto& receiver : receivers) {
    for (const auto& report : receiver->reports()) {
      if (report.eof) best = std::max(best, report.throughput_kBps());
    }
  }
  return best;
}

TEST(Testbed, CleanSetupServesDirectly) {
  TestbedConfig config;
  config.setup = Setup::clean;
  Testbed bed(config);
  EXPECT_EQ(bed.server_count(), 1u);
  // No redirection machinery in the clean setup.
  EXPECT_TRUE(bed.server(0).ip().is_local(config.service.address));

  apps::TtcpReceiver receiver(bed.server(0), config.service.address,
                              config.service.port);
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = 64 * 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  ASSERT_TRUE(transmitter.start().ok());
  bed.net().run_for(sim::seconds(30));
  EXPECT_TRUE(transmitter.report().finished);
  EXPECT_EQ(receiver.total_bytes(), 64u * 1024);
}

TEST(Testbed, PrimaryOnlySetupRedirects) {
  TestbedConfig config;
  config.setup = Setup::primary_only;
  Testbed bed(config);
  const auto* entry = bed.redirector().lookup(config.service);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->primary, bed.server_address(0));
  EXPECT_TRUE(entry->backups.empty());
}

TEST(Testbed, PrimaryBackupSetupBuildsRequestedDepth) {
  for (int backups : {1, 2, 4}) {
    TestbedConfig config;
    config.setup = Setup::primary_backup;
    config.backups = backups;
    Testbed bed(config);
    EXPECT_EQ(bed.server_count(), static_cast<std::size_t>(backups) + 1);
    auto chain = bed.redirector_agent().chain(config.service);
    EXPECT_EQ(chain.size(), static_cast<std::size_t>(backups) + 1);
  }
}

TEST(Testbed, DistinctSeedsGiveIdenticalDeterministicRuns) {
  auto run = [](std::uint64_t seed) {
    TestbedConfig config;
    config.setup = Setup::primary_backup;
    config.backups = 1;
    config.seed = seed;
    Testbed bed(config);
    apps::TtcpReceiver receiver(bed.server(0), config.service.address,
                                config.service.port);
    apps::TtcpReceiver backup_rx(bed.server(1), config.service.address,
                                 config.service.port);
    apps::TtcpTransmitter::Config tx;
    tx.server = config.service;
    tx.total_bytes = 256 * 1024;
    apps::TtcpTransmitter transmitter(bed.client(), tx);
    (void)transmitter.start();
    bed.net().run_for(sim::seconds(60));
    return receiver.reports().empty()
               ? sim::TimePoint{}
               : receiver.reports().front().eof_at;
  };
  // Same seed -> bit-identical completion instant; different seed -> runs
  // still complete (and typically at a different instant).
  auto t1 = run(42);
  auto t2 = run(42);
  EXPECT_EQ(t1.ns, t2.ns);
  EXPECT_GT(t1.ns, 0);
}

// The headline regression test: the Figure 4 ordering must hold.
TEST(Fig4Shape, OrderingAndRisingThroughputAt256Bytes) {
  const std::size_t total = 256 * 1024;
  double clean = measure(Setup::clean, 256, total);
  double no_redirect = measure(Setup::no_redirection, 256, total);
  double primary = measure(Setup::primary_only, 256, total);
  double ft = measure(Setup::primary_backup, 256, total);

  ASSERT_GT(clean, 0);
  ASSERT_GT(ft, 0);
  // Ordering (tolerate a whisker of noise on the near-equal pair).
  EXPECT_GE(clean * 1.02, no_redirect);
  EXPECT_GE(no_redirect * 1.02, primary);
  EXPECT_GT(primary, ft);
  // "Not unreasonably lower": FT keeps a substantial fraction of clean.
  EXPECT_GT(ft, clean * 0.25);
}

TEST(Fig4Shape, ThroughputRisesWithWriteSize) {
  double at64 = measure(Setup::primary_backup, 64, 96 * 1024);
  double at256 = measure(Setup::primary_backup, 256, 192 * 1024);
  double at1024 = measure(Setup::primary_backup, 1024, 512 * 1024);
  EXPECT_GT(at256, at64 * 1.5);
  EXPECT_GT(at1024, at256 * 1.5);
}

}  // namespace
}  // namespace hydranet::testbed
