// Workload-application tests: ttcp, mini-HTTP, streaming, brokerage.
#include <gtest/gtest.h>

#include "apps/http.hpp"
#include "apps/session.hpp"
#include "apps/stream.hpp"
#include "test_util.hpp"

namespace hydranet::apps {
namespace {

using testutil::ip;
using testutil::Pair;

TEST(TtcpPattern, DeterministicAndOffsetDependent) {
  Bytes a = ttcp_pattern(64, 0);
  Bytes b = ttcp_pattern(64, 0);
  EXPECT_EQ(a, b);
  Bytes shifted = ttcp_pattern(64, 32);
  // The tail of `a` equals the head of `shifted`: position-dependent.
  Bytes a_tail(a.begin() + 32, a.end());
  Bytes s_head(shifted.begin(), shifted.begin() + 32);
  EXPECT_EQ(a_tail, s_head);
  EXPECT_NE(a, shifted);
}

TEST(Fnv1a, KnownVectorAndComposability) {
  // FNV-1a of "a" is a published constant.
  Bytes a{'a'};
  EXPECT_EQ(fnv1a(a), 0xaf63dc4c8601ec8cull);
  // Hashing in chunks equals hashing the whole.
  Bytes data = ttcp_pattern(1000, 0);
  std::uint64_t whole = fnv1a(data);
  std::uint64_t split = fnv1a(BytesView(data).subspan(400),
                              fnv1a(BytesView(data).subspan(0, 400)));
  EXPECT_EQ(whole, split);
}

TEST(PeriodOptions, EncodeTheEraTuning) {
  tcp::TcpOptions options = period_tcp_options();
  EXPECT_TRUE(options.nodelay);
  EXPECT_TRUE(options.packetize_writes);
  EXPECT_EQ(options.min_rto.ns, sim::seconds(1).ns);
  EXPECT_EQ(options.send_buffer_capacity, 16u * 1024);
  EXPECT_EQ(options.recv_buffer_capacity, 16u * 1024);
}

TEST(Ttcp, TransmitterReceiverRoundTrip) {
  Pair pair;
  TtcpReceiver receiver(pair.b, net::Ipv4Address(), 5001);
  TtcpTransmitter::Config config;
  config.server = {ip(10, 0, 0, 2), 5001};
  config.total_bytes = 200 * 1024;
  config.write_size = 512;
  TtcpTransmitter transmitter(pair.a, config);
  ASSERT_TRUE(transmitter.start().ok());
  pair.net.run();

  EXPECT_TRUE(transmitter.report().finished);
  EXPECT_FALSE(transmitter.report().failed);
  ASSERT_EQ(receiver.reports().size(), 1u);
  const auto& report = receiver.reports().front();
  EXPECT_TRUE(report.eof);
  EXPECT_EQ(report.bytes_received, config.total_bytes);
  EXPECT_EQ(report.checksum, fnv1a(ttcp_pattern(config.total_bytes, 0)));
  EXPECT_GT(report.throughput_kBps(), 0.0);
}

TEST(Ttcp, TransmitterReportsFailureWhenServerVanishes) {
  Pair pair;
  TtcpReceiver receiver(pair.b, net::Ipv4Address(), 5001);
  TtcpTransmitter::Config config;
  config.server = {ip(10, 0, 0, 2), 5001};
  config.total_bytes = 4 * 1024 * 1024;
  config.tcp.max_retransmits = 4;
  config.tcp.max_rto = sim::seconds(2);
  TtcpTransmitter transmitter(pair.a, config);
  ASSERT_TRUE(transmitter.start().ok());
  pair.net.run_for(sim::milliseconds(300));
  pair.b.crash();
  pair.net.run_for(sim::seconds(30));
  EXPECT_TRUE(transmitter.report().failed);
  EXPECT_FALSE(transmitter.report().finished);
}

TEST(Http, SingleRequestResponseVerified) {
  Pair pair;
  HttpServer server(pair.b, {.listen_address = net::Ipv4Address(),
                             .port = 80,
                             .default_body_size = 1024});
  HttpClient client(pair.a, {.server = {ip(10, 0, 0, 2), 80},
                             .paths = {"/index.html"}});
  ASSERT_TRUE(client.start().ok());
  pair.net.run();
  EXPECT_EQ(client.report().responses, 1u);
  EXPECT_TRUE(client.report().all_ok);
  EXPECT_EQ(client.report().body_bytes, 1024u);
  EXPECT_EQ(server.requests_served(), 1u);
  ASSERT_EQ(client.report().latencies.size(), 1u);
  EXPECT_GT(client.report().latencies[0].ns, 0);
}

TEST(Http, KeepAliveServesManyRequestsOnOneConnection) {
  Pair pair;
  HttpServer server(pair.b, {.listen_address = net::Ipv4Address(),
                             .port = 80,
                             .default_body_size = 2048});
  std::vector<std::string> paths;
  for (int i = 0; i < 25; ++i) paths.push_back("/page" + std::to_string(i));
  HttpClient client(pair.a, {.server = {ip(10, 0, 0, 2), 80}, .paths = paths});
  ASSERT_TRUE(client.start().ok());
  pair.net.run();
  EXPECT_EQ(client.report().responses, 25u);
  EXPECT_TRUE(client.report().all_ok);
  EXPECT_EQ(server.requests_served(), 25u);
  EXPECT_EQ(server.connections_accepted(), 1u);  // keep-alive
}

TEST(Http, BodiesAreDeterministicPerPath) {
  Bytes a1 = http_body_for("/a", 512);
  Bytes a2 = http_body_for("/a", 512);
  Bytes b = http_body_for("/b", 512);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(Streaming, FixedRateStreamArrivesIntact) {
  Pair pair;
  StreamingSource::Config source_config;
  source_config.listen_address = net::Ipv4Address();
  source_config.port = 8000;
  source_config.chunk_size = 1000;
  source_config.interval = sim::milliseconds(5);
  source_config.total_bytes = 200 * 1024;
  StreamingSource source(pair.b, source_config);

  StreamingSink::Config sink_config;
  sink_config.server = {ip(10, 0, 0, 2), 8000};
  StreamingSink sink(pair.a, sink_config);
  ASSERT_TRUE(sink.start().ok());
  pair.net.run();

  EXPECT_TRUE(sink.report().eof);
  EXPECT_EQ(sink.report().bytes, source_config.total_bytes);
  EXPECT_EQ(sink.report().checksum,
            fnv1a(ttcp_pattern(source_config.total_bytes, 0)));
  // A healthy path shows no stalls above the default threshold.
  EXPECT_TRUE(sink.report().stalls.empty());
}

TEST(Streaming, SinkRecordsStallWhenLinkBlips) {
  Pair pair;
  StreamingSource::Config source_config;
  source_config.listen_address = net::Ipv4Address();
  source_config.port = 8000;
  source_config.chunk_size = 1000;
  source_config.interval = sim::milliseconds(5);
  source_config.total_bytes = 400 * 1024;
  StreamingSource source(pair.b, source_config);

  StreamingSink::Config sink_config;
  sink_config.server = {ip(10, 0, 0, 2), 8000};
  sink_config.stall_threshold = sim::milliseconds(150);
  StreamingSink sink(pair.a, sink_config);
  ASSERT_TRUE(sink.start().ok());

  pair.net.run_for(sim::milliseconds(300));
  pair.link.set_down(true);
  pair.net.run_for(sim::milliseconds(800));
  pair.link.set_down(false);
  pair.net.run_for(sim::seconds(120));

  EXPECT_TRUE(sink.report().eof);
  EXPECT_EQ(sink.report().bytes, source_config.total_bytes);
  ASSERT_FALSE(sink.report().stalls.empty());
  EXPECT_GE(sink.report().max_gap.ns, sim::milliseconds(700).ns);
}

TEST(Brokerage, SessionStateAccumulatesCorrectly) {
  Pair pair;
  BrokerageServer server(pair.b, {.listen_address = net::Ipv4Address(),
                                  .port = 9100});
  BrokerageClient::Config config;
  config.server = {ip(10, 0, 0, 2), 9100};
  config.orders = {5, -2, 7, -4, 10, 1, -1, 3};
  config.think_time = sim::milliseconds(5);
  BrokerageClient client(pair.a, config);
  ASSERT_TRUE(client.start().ok());
  pair.net.run();

  EXPECT_TRUE(client.report().done);
  EXPECT_FALSE(client.report().failed);
  EXPECT_TRUE(client.report().consistent);
  EXPECT_EQ(client.report().executions, config.orders.size());
  EXPECT_EQ(client.report().final_sequence,
            static_cast<std::int64_t>(config.orders.size()));
  EXPECT_EQ(client.report().final_position, 19);
  EXPECT_EQ(server.orders_executed(), config.orders.size());
}

TEST(Brokerage, TwoIndependentSessionsKeepSeparateState) {
  Pair pair;
  BrokerageServer server(pair.b, {.listen_address = net::Ipv4Address(),
                                  .port = 9100});
  BrokerageClient::Config c1;
  c1.server = {ip(10, 0, 0, 2), 9100};
  c1.orders = {100, 100};
  c1.think_time = sim::milliseconds(3);
  BrokerageClient client1(pair.a, c1);
  BrokerageClient::Config c2;
  c2.server = {ip(10, 0, 0, 2), 9100};
  c2.orders = {-7, -7, -7};
  c2.think_time = sim::milliseconds(3);
  BrokerageClient client2(pair.a, c2);
  ASSERT_TRUE(client1.start().ok());
  ASSERT_TRUE(client2.start().ok());
  pair.net.run();

  EXPECT_TRUE(client1.report().consistent);
  EXPECT_TRUE(client2.report().consistent);
  EXPECT_EQ(client1.report().final_position, 200);
  EXPECT_EQ(client2.report().final_position, -21);
  EXPECT_EQ(server.orders_executed(), 5u);
}

}  // namespace
}  // namespace hydranet::apps
