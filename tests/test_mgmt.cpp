// Replica-management protocol (§4.4): message serde, reliable transport,
// registration/chain wiring, fail-over orchestration, voluntary leave,
// scaled replication, and the re-commissioning extension — all through the
// agents, on the paper's testbed topology.
#include <gtest/gtest.h>

#include "apps/stream.hpp"
#include "apps/ttcp.hpp"
#include "mgmt/host_agent.hpp"
#include "mgmt/protocol.hpp"
#include "mgmt/redirector_agent.hpp"
#include "test_util.hpp"
#include "testbed/testbed.hpp"

namespace hydranet::mgmt {
namespace {

using apps::fnv1a;
using apps::ttcp_pattern;
using testbed::Setup;
using testbed::Testbed;
using testbed::TestbedConfig;
using testutil::ip;

TEST(MgmtMessage, SerdeRoundTripAllFields) {
  MgmtMessage m;
  m.type = MsgType::failure_report;
  m.request_id = 0xcafe;
  m.service = {ip(192, 20, 225, 20), 5001};
  m.host = ip(10, 0, 3, 2);
  m.has_host = true;
  m.fault_tolerant = false;
  m.blocked_on_successor = true;
  auto parsed = MgmtMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().type, MsgType::failure_report);
  EXPECT_EQ(parsed.value().request_id, 0xcafeu);
  EXPECT_EQ(parsed.value().service, m.service);
  EXPECT_EQ(parsed.value().host, m.host);
  EXPECT_TRUE(parsed.value().has_host);
  EXPECT_FALSE(parsed.value().fault_tolerant);
  EXPECT_TRUE(parsed.value().blocked_on_successor);
}

TEST(MgmtMessage, RejectsBadMagicAndTruncation) {
  Bytes junk{9, 9, 9, 9, 9, 9};
  EXPECT_FALSE(MgmtMessage::parse(junk).ok());
  MgmtMessage m;
  Bytes wire = m.serialize();
  wire.resize(6);
  EXPECT_FALSE(MgmtMessage::parse(wire).ok());
}

TEST(MgmtTransport, ReliableDeliveryRetriesThroughLoss) {
  link::Link::Config lossy;
  lossy.loss_probability = 0.6;
  lossy.seed = 17;
  testutil::Pair pair(lossy);
  MgmtTransport sender(pair.a);
  MgmtTransport receiver(pair.b);

  int received = 0;
  receiver.set_handler([&](const net::Endpoint& from, const MgmtMessage& msg) {
    received++;
    receiver.acknowledge(from, msg.request_id);
  });

  MgmtMessage message;
  message.type = MsgType::set_successor;
  sender.send_reliable({ip(10, 0, 0, 2), MgmtTransport::kPort}, message,
                       /*max_retries=*/30);
  pair.net.run_for(sim::seconds(10));
  EXPECT_GE(received, 1);
  EXPECT_EQ(sender.pending_requests(), 0u);  // acked, retries stopped
}

TEST(MgmtTransport, AbandonsAfterRetriesExhausted) {
  testutil::Pair pair;
  MgmtTransport sender(pair.a);
  pair.b.crash();
  MgmtMessage message;
  message.type = MsgType::promote;
  sender.send_reliable({ip(10, 0, 0, 2), MgmtTransport::kPort}, message,
                       /*max_retries=*/3, sim::milliseconds(50));
  EXPECT_EQ(sender.pending_requests(), 1u);
  pair.net.run_for(sim::seconds(2));
  EXPECT_EQ(sender.pending_requests(), 0u);
}

TEST(MgmtRegistration, BuildsChainTableAndWiring) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 2;
  Testbed bed(config);

  // Chain known at the redirector, primary first.
  auto chain = bed.redirector_agent().chain(config.service);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], bed.server_address(0));
  EXPECT_EQ(chain[1], bed.server_address(1));
  EXPECT_EQ(chain[2], bed.server_address(2));

  // Data plane multicasts to all three.
  const auto* entry = bed.redirector().lookup(config.service);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->mode, redirector::ServiceMode::fault_tolerant);
  EXPECT_EQ(entry->primary, bed.server_address(0));
  EXPECT_EQ(entry->backups.size(), 2u);

  // Acknowledgement-channel wiring matches Figure 3.
  auto* s1 = bed.agent(0).replica(config.service);
  auto* s2 = bed.agent(1).replica(config.service);
  auto* s3 = bed.agent(2).replica(config.service);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  ASSERT_NE(s3, nullptr);
  EXPECT_EQ(s1->mode(), tcp::ReplicaMode::primary);
  EXPECT_FALSE(s1->predecessor().has_value());
  EXPECT_EQ(s1->successor(), bed.server_address(1));
  EXPECT_EQ(s2->predecessor(), bed.server_address(0));
  EXPECT_EQ(s2->successor(), bed.server_address(2));
  EXPECT_EQ(s3->predecessor(), bed.server_address(1));
  EXPECT_FALSE(s3->successor().has_value());
}

/// Runs a ttcp push over the deployed service and returns the receiver
/// reports; optionally injects a mid-transfer action.
struct TtcpRun {
  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  std::unique_ptr<apps::TtcpTransmitter> transmitter;

  TtcpRun(Testbed& bed, std::size_t total_bytes) {
    tcp::TcpOptions server_options = apps::period_tcp_options();
    for (std::size_t i = 0; i < bed.server_count(); ++i) {
      receivers.push_back(std::make_unique<apps::TtcpReceiver>(
          bed.server(i), bed.config().service.address,
          bed.config().service.port, server_options));
    }
    apps::TtcpTransmitter::Config config;
    config.server = bed.config().service;
    config.total_bytes = total_bytes;
    config.write_size = 1024;
    transmitter =
        std::make_unique<apps::TtcpTransmitter>(bed.client(), config);
  }
};

TEST(MgmtFailover, PrimaryCrashIsMaskedFromTheClient) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 4;
  Testbed bed(config);

  const std::size_t total = 3 * 1024 * 1024;
  TtcpRun run(bed, total);
  ASSERT_TRUE(run.transmitter->start().ok());
  bed.net().run_for(sim::seconds(2));
  ASSERT_FALSE(run.transmitter->report().finished);
  ASSERT_GT(run.receivers[0]->total_bytes(), 0u);

  bed.crash_server(0);  // the primary dies mid-stream
  bed.net().run_for(sim::seconds(60));

  // The client finished cleanly; the backup (new primary) has the whole
  // stream, byte-exact.
  EXPECT_TRUE(run.transmitter->report().finished);
  EXPECT_FALSE(run.transmitter->report().failed);
  ASSERT_FALSE(run.receivers[1]->reports().empty());
  const auto& report = run.receivers[1]->reports().front();
  EXPECT_TRUE(report.eof);
  EXPECT_EQ(report.bytes_received, total);
  EXPECT_EQ(report.checksum, fnv1a(ttcp_pattern(total, 0)));

  // The redirector eliminated the dead primary and promoted the backup.
  auto chain = bed.redirector_agent().chain(config.service);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], bed.server_address(1));
  EXPECT_GE(bed.redirector_agent().stats().promotions_ordered, 1u);
  auto* survivor = bed.agent(1).replica(config.service);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->mode(), tcp::ReplicaMode::primary);
}

TEST(MgmtFailover, BackupCrashIsMaskedFromTheClient) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 4;
  Testbed bed(config);

  const std::size_t total = 3 * 1024 * 1024;
  TtcpRun run(bed, total);
  ASSERT_TRUE(run.transmitter->start().ok());
  bed.net().run_for(sim::seconds(2));
  ASSERT_FALSE(run.transmitter->report().finished);

  bed.crash_server(1);  // the backup dies: the primary's gates block
  bed.net().run_for(sim::seconds(90));

  EXPECT_TRUE(run.transmitter->report().finished);
  ASSERT_FALSE(run.receivers[0]->reports().empty());
  const auto& report = run.receivers[0]->reports().front();
  EXPECT_TRUE(report.eof);
  EXPECT_EQ(report.bytes_received, total);
  EXPECT_EQ(report.checksum, fnv1a(ttcp_pattern(total, 0)));

  auto chain = bed.redirector_agent().chain(config.service);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], bed.server_address(0));
}

TEST(MgmtFailover, MiddleBackupCrashHealsTheChain) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 2;
  config.detector.retransmission_threshold = 4;
  Testbed bed(config);

  const std::size_t total = 3 * 1024 * 1024;
  TtcpRun run(bed, total);
  ASSERT_TRUE(run.transmitter->start().ok());
  bed.net().run_for(sim::seconds(2));
  ASSERT_FALSE(run.transmitter->report().finished);

  bed.crash_server(1);  // middle of the chain
  bed.net().run_for(sim::seconds(90));

  EXPECT_TRUE(run.transmitter->report().finished);
  const auto& report = run.receivers[0]->reports().front();
  EXPECT_EQ(report.bytes_received, total);
  EXPECT_EQ(report.checksum, fnv1a(ttcp_pattern(total, 0)));

  auto chain = bed.redirector_agent().chain(config.service);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], bed.server_address(0));
  EXPECT_EQ(chain[1], bed.server_address(2));
  // The survivors' channel is rewired around the hole.
  EXPECT_EQ(bed.agent(0).replica(config.service)->successor(),
            bed.server_address(2));
  EXPECT_EQ(bed.agent(2).replica(config.service)->predecessor(),
            bed.server_address(0));
}

TEST(MgmtFailover, VoluntaryLeaveOfPrimaryIsSeamless) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  Testbed bed(config);

  const std::size_t total = 3 * 1024 * 1024;
  TtcpRun run(bed, total);
  ASSERT_TRUE(run.transmitter->start().ok());
  bed.net().run_for(sim::seconds(2));
  ASSERT_FALSE(run.transmitter->report().finished);

  bed.agent(0).leave(config.service);  // deletion of the primary (§4.4)
  bed.net().run_for(sim::seconds(90));

  EXPECT_TRUE(run.transmitter->report().finished);
  EXPECT_FALSE(run.transmitter->report().failed);
  ASSERT_FALSE(run.receivers[1]->reports().empty());
  EXPECT_EQ(run.receivers[1]->reports().front().bytes_received, total);
  auto chain = bed.redirector_agent().chain(config.service);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], bed.server_address(1));
}

TEST(MgmtFailover, CongestionReportWithAllAliveShutsDownThePrimary) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  Testbed bed(config);

  // A failure report arrives although every replica answers probes: the
  // paper's "spurious unavailability" (congestion).  Policy: eliminate
  // the replica failing to close the loop — the primary.
  MgmtMessage report;
  report.type = MsgType::failure_report;
  report.service = config.service;
  report.blocked_on_successor = false;
  bed.agent(1).transport().send_reliable(
      {ip(10, 0, 2, 1), MgmtTransport::kPort}, report);
  bed.net().run_for(sim::seconds(5));

  auto chain = bed.redirector_agent().chain(config.service);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], bed.server_address(1));
  EXPECT_EQ(bed.agent(1).replica(config.service)->mode(),
            tcp::ReplicaMode::primary);
  // The former primary was ordered to stand down.
  EXPECT_EQ(bed.agent(0).replica(config.service), nullptr);
  EXPECT_GE(bed.agent(0).stats().shutdowns, 1u);
}

TEST(MgmtFailover, ClientCrashDoesNotDismantleTheChain) {
  // Server-push traffic toward a client that dies: EVERY replica's own
  // retransmission timer fires (nobody acks), so every replica raises
  // failure signals — including the primary.  Those must be attributed
  // to the client side; otherwise a single dead viewer would shut the
  // whole service down for everyone.
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 3;
  Testbed bed(config);

  apps::StreamingSource::Config source_config;
  source_config.listen_address = config.service.address;
  source_config.port = config.service.port;
  source_config.chunk_size = 1400;
  source_config.interval = sim::milliseconds(10);
  source_config.total_bytes = 16 * 1024 * 1024;
  source_config.tcp = apps::period_tcp_options();
  apps::StreamingSource primary_source(bed.server(0), source_config);
  apps::StreamingSource backup_source(bed.server(1), source_config);

  apps::StreamingSink::Config sink_config;
  sink_config.server = config.service;
  sink_config.tcp = apps::period_tcp_options();
  apps::StreamingSink viewer(bed.client(), sink_config);
  ASSERT_TRUE(viewer.start().ok());

  bed.net().run_for(sim::seconds(3));
  ASSERT_GT(viewer.report().bytes, 0u);

  bed.client().crash();  // the viewer vanishes mid-stream
  bed.net().run_for(sim::seconds(120));

  // Signals were raised (the replicas did notice)...
  auto* primary_replica = bed.agent(0).replica(config.service);
  ASSERT_NE(primary_replica, nullptr);
  EXPECT_GT(primary_replica->failure_signals_raised() +
                bed.agent(1).replica(config.service)->failure_signals_raised(),
            0u);
  // ...but the chain is intact: nobody was eliminated for a client death.
  auto chain = bed.redirector_agent().chain(config.service);
  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(bed.redirector_agent().stats().replicas_eliminated, 0u);

  // The service keeps serving: a new viewer (the host revived) streams.
  bed.client().revive();
  apps::StreamingSink second(bed.client(), sink_config);
  ASSERT_TRUE(second.start().ok());
  bed.net().run_for(sim::seconds(30));
  EXPECT_GT(second.report().bytes, 0u);
  EXPECT_EQ(bed.redirector_agent().stats().replicas_eliminated, 0u);
}

TEST(MgmtScaled, ScaledReplicaRedirectsWithoutChain) {
  // Figure 2: a scaled (non-FT) web replica; unrelated ports untouched.
  TestbedConfig config;
  config.setup = Setup::primary_only;
  Testbed bed(config);

  // Replace the FT deployment with a scaled one on a second service.
  net::Endpoint scaled_service{ip(192, 20, 225, 21), 80};
  bed.agent(0).install_scaled_replica(scaled_service);
  bed.net().run_for(sim::seconds(1));

  const auto* entry = bed.redirector().lookup(scaled_service);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->mode, redirector::ServiceMode::scaled);

  apps::TtcpReceiver receiver(bed.server(0), scaled_service.address, 80);
  apps::TtcpTransmitter::Config tx_config;
  tx_config.server = scaled_service;
  tx_config.total_bytes = 64 * 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx_config);
  ASSERT_TRUE(transmitter.start().ok());
  bed.net().run_for(sim::seconds(20));
  EXPECT_TRUE(transmitter.report().finished);
  EXPECT_EQ(receiver.total_bytes(), 64u * 1024);
}

TEST(MgmtRecommission, RevivedReplicaRejoinsAndProtectsNewConnections) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 4;
  Testbed bed(config);

  // Crash the backup; the chain shrinks to the primary alone.
  bed.crash_server(1);
  TtcpRun run(bed, 400 * 1024);
  ASSERT_TRUE(run.transmitter->start().ok());
  bed.net().run_for(sim::seconds(60));
  ASSERT_TRUE(run.transmitter->report().finished);
  ASSERT_EQ(bed.redirector_agent().chain(config.service).size(), 1u);

  // The machine recovers and re-commissions as a backup (§6 future work).
  bed.server(1).revive();
  bed.agent(1).rejoin(config.service, config.detector);
  bed.net().run_for(sim::seconds(2));
  auto chain = bed.redirector_agent().chain(config.service);
  ASSERT_EQ(chain.size(), 2u);

  // A new connection is protected: crash the (old) primary mid-stream and
  // the rejoined backup carries it to completion.  (The first run's
  // receivers still own the listening port, so its report vectors catch
  // the new connection too.)
  apps::TtcpTransmitter::Config tx_config;
  tx_config.server = config.service;
  tx_config.total_bytes = 600 * 1024;
  apps::TtcpTransmitter second(bed.client(), tx_config);
  ASSERT_TRUE(second.start().ok());
  bed.net().run_for(sim::seconds(2));
  ASSERT_FALSE(second.report().finished);
  bed.crash_server(0);
  bed.net().run_for(sim::seconds(60));

  EXPECT_TRUE(second.report().finished);
  // server(1) saw no connection while crashed, so the rejoined replica's
  // first accepted connection is this one — completed byte-exact.
  ASSERT_FALSE(run.receivers[1]->reports().empty());
  const auto& report = run.receivers[1]->reports().back();
  EXPECT_TRUE(report.eof);
  EXPECT_EQ(report.bytes_received, 600u * 1024);
  EXPECT_EQ(report.checksum, fnv1a(ttcp_pattern(600 * 1024, 0)));
}

}  // namespace
}  // namespace hydranet::mgmt
