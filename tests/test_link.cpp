// Link-layer tests: delivery timing, queueing, loss models, failure.
#include <gtest/gtest.h>

#include "link/cpu_model.hpp"
#include "link/link.hpp"
#include "sim/scheduler.hpp"

namespace hydranet::link {
namespace {

struct LinkFixture : ::testing::Test {
  sim::Scheduler scheduler;
  NetworkInterface a{"a", net::Ipv4Address(10, 0, 0, 1), 24};
  NetworkInterface b{"b", net::Ipv4Address(10, 0, 0, 2), 24};

  std::vector<Bytes> received_at_b;
  std::vector<sim::TimePoint> arrival_times;

  void wire(Link& link) {
    link.attach(a, b);
    b.set_rx_handler([this](PacketBuffer frame) {
      received_at_b.push_back(frame.flatten_copy());
      arrival_times.push_back(scheduler.now());
    });
  }
};

TEST_F(LinkFixture, DeliversFrameAfterTransmissionPlusPropagation) {
  Link::Config config;
  config.bandwidth_bps = 8e6;                     // 1 byte/us
  config.propagation = sim::microseconds(100);
  Link link(scheduler, config);
  wire(link);

  Bytes frame(1000, 0x55);
  ASSERT_TRUE(a.send(frame).ok());
  scheduler.run();
  ASSERT_EQ(received_at_b.size(), 1u);
  EXPECT_EQ(received_at_b[0], frame);
  // 1000 bytes at 1 byte/us = 1000us tx + 100us propagation.
  EXPECT_EQ(arrival_times[0].ns, 1100 * 1000);
}

TEST_F(LinkFixture, BackToBackFramesSerialise) {
  Link::Config config;
  config.bandwidth_bps = 8e6;
  config.propagation = sim::microseconds(0);
  Link link(scheduler, config);
  wire(link);

  ASSERT_TRUE(a.send(Bytes(500, 1)).ok());
  ASSERT_TRUE(a.send(Bytes(500, 2)).ok());
  scheduler.run();
  ASSERT_EQ(received_at_b.size(), 2u);
  EXPECT_EQ(arrival_times[0].ns, 500 * 1000);
  EXPECT_EQ(arrival_times[1].ns, 1000 * 1000);  // queued behind the first
}

TEST_F(LinkFixture, DropTailQueueBoundsBacklog) {
  Link::Config config;
  config.bandwidth_bps = 1e6;
  config.queue_capacity_packets = 4;
  Link link(scheduler, config);
  wire(link);

  for (int i = 0; i < 10; ++i) (void)a.send(Bytes(100, 0));
  scheduler.run();
  EXPECT_EQ(received_at_b.size(), 4u);
  EXPECT_EQ(link.stats().queue_drops, 6u);
}

TEST_F(LinkFixture, BernoulliLossDropsRoughlyP) {
  Link::Config config;
  config.loss_probability = 0.25;
  config.seed = 7;
  Link link(scheduler, config);
  wire(link);

  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    (void)a.send(Bytes(10, 0));
    scheduler.run();  // drain so the queue never overflows
  }
  double delivered = static_cast<double>(received_at_b.size()) / n;
  EXPECT_NEAR(delivered, 0.75, 0.03);
  EXPECT_EQ(link.stats().loss_drops + received_at_b.size(),
            static_cast<std::uint64_t>(n));
}

TEST_F(LinkFixture, GilbertElliottProducesBurstyLoss) {
  Link::Config config;
  Link link(scheduler, config);
  wire(link);
  GilbertElliottLoss::Params params;
  params.p_good = 0.0;
  params.p_bad = 1.0;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.2;
  link.set_loss_model(std::make_unique<GilbertElliottLoss>(params));

  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    (void)a.send(Bytes(10, 0));
    scheduler.run();
  }
  // Loss rate should approximate the stationary bad-state share
  // (0.05 / (0.05 + 0.2) = 20%), very roughly.
  double loss = 1.0 - static_cast<double>(received_at_b.size()) / n;
  EXPECT_GT(loss, 0.05);
  EXPECT_LT(loss, 0.45);
}

TEST_F(LinkFixture, DownLinkDeliversNothing) {
  Link link(scheduler, Link::Config{});
  wire(link);
  link.set_down(true);
  (void)a.send(Bytes(10, 0));
  scheduler.run();
  EXPECT_TRUE(received_at_b.empty());
  EXPECT_GE(link.stats().down_drops, 1u);

  link.set_down(false);
  ASSERT_TRUE(a.send(Bytes(10, 0)).ok());
  scheduler.run();
  EXPECT_EQ(received_at_b.size(), 1u);
}

TEST_F(LinkFixture, DownedInterfaceNeitherSendsNorReceives) {
  Link link(scheduler, Link::Config{});
  wire(link);
  a.set_up(false);
  EXPECT_FALSE(a.send(Bytes(10, 0)).ok());
  a.set_up(true);
  b.set_up(false);
  (void)a.send(Bytes(10, 0));
  scheduler.run();
  EXPECT_TRUE(received_at_b.empty());
}

TEST_F(LinkFixture, CountersTrackTraffic) {
  Link link(scheduler, Link::Config{});
  wire(link);
  (void)a.send(Bytes(100, 0));
  (void)a.send(Bytes(50, 0));
  scheduler.run();
  EXPECT_EQ(a.tx_packets(), 2u);
  EXPECT_EQ(a.tx_bytes(), 150u);
  EXPECT_EQ(b.rx_packets(), 2u);
  EXPECT_EQ(b.rx_bytes(), 150u);
}

TEST(Subnet, PrefixMatching) {
  NetworkInterface iface("x", net::Ipv4Address(10, 0, 1, 1), 24);
  EXPECT_TRUE(iface.on_subnet(net::Ipv4Address(10, 0, 1, 200)));
  EXPECT_FALSE(iface.on_subnet(net::Ipv4Address(10, 0, 2, 1)));
  NetworkInterface host_route("y", net::Ipv4Address(10, 0, 1, 1), 32);
  EXPECT_TRUE(host_route.on_subnet(net::Ipv4Address(10, 0, 1, 1)));
  EXPECT_FALSE(host_route.on_subnet(net::Ipv4Address(10, 0, 1, 2)));
  NetworkInterface any("z", net::Ipv4Address(10, 0, 1, 1), 0);
  EXPECT_TRUE(any.on_subnet(net::Ipv4Address(99, 99, 99, 99)));
}

TEST(CpuModel, CostScalesWithSizeAndFactor) {
  CpuModel model{sim::microseconds(100), sim::nanoseconds(500), 1.0};
  EXPECT_EQ(model.cost(0).ns, 100000);
  EXPECT_EQ(model.cost(1000).ns, 100000 + 500000);
  model.scale = 2.0;
  EXPECT_EQ(model.cost(1000).ns, 2 * (100000 + 500000));
  EXPECT_EQ(CpuModel::free().cost(123456).ns, 0);
}

}  // namespace
}  // namespace hydranet::link
