// TCP under loss: retransmission, fast retransmit, congestion response,
// give-up behaviour, and a property sweep over loss rates and seeds.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hydranet::tcp {
namespace {

using apps::fnv1a;
using apps::ttcp_pattern;
using testutil::ip;
using testutil::Pair;

/// Pushes `total` pattern bytes from a (client) to b (sink) and returns
/// the client connection once the run drains.
struct BulkPush {
  std::shared_ptr<TcpConnection> conn;
  std::size_t written = 0;

  BulkPush(Pair& pair, testutil::ByteSinkServer&, std::size_t total,
           TcpOptions options = {}) {
    auto client = pair.a.tcp().connect(net::Ipv4Address(),
                                       {ip(10, 0, 0, 2), 80}, options);
    conn = client.value();
    auto pump = [this, total] {
      while (written < total) {
        std::size_t n = std::min<std::size_t>(total - written, 8192);
        Bytes chunk = ttcp_pattern(n, written);
        auto accepted = conn->send(chunk);
        if (!accepted) break;
        written += accepted.value();
      }
      if (written >= total) conn->close();
    };
    conn->set_on_established(pump);
    conn->set_on_writable(pump);
  }
};

TEST(TcpLoss, SingleDropTriggersFastRetransmit) {
  Pair pair;
  // Drop one mid-stream full-size data frame.  The following data produces
  // duplicate ACKs and a fast retransmit, with no RTO.
  pair.link.set_loss_model(std::make_unique<testutil::DropNth>(
      std::vector<std::uint64_t>{25}, /*min_size=*/1000));
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  BulkPush push(pair, server, 200 * 1024);
  pair.net.run();

  EXPECT_EQ(server.received.size(), 200u * 1024);
  EXPECT_EQ(fnv1a(server.received), fnv1a(ttcp_pattern(200 * 1024, 0)));
  EXPECT_GE(push.conn->stats().fast_retransmits, 1u);
  EXPECT_EQ(push.conn->stats().timeouts, 0u);
}

TEST(TcpLoss, TailDropRecoversViaTimeout) {
  Pair pair;
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);

  // Send a tiny message whose only data segment is dropped: no dup-acks
  // can save it; the RTO must.
  pair.link.set_loss_model(
      std::make_unique<testutil::DropNth>(std::vector<std::uint64_t>{3}));
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80});
  auto conn = client.value();
  conn->set_on_established([&] {
    Bytes tiny(100, 0x7e);
    (void)conn->send(tiny);
    conn->close();
  });
  pair.net.run();
  EXPECT_EQ(server.received.size(), 100u);
  EXPECT_GE(conn->stats().timeouts, 1u);
}

TEST(TcpLoss, CongestionWindowCollapsesOnTimeout) {
  Pair pair;
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  BulkPush push(pair, server, 4 * 1024 * 1024);
  pair.net.run_for(sim::milliseconds(300));
  std::size_t cwnd_before = push.conn->cwnd();
  EXPECT_GT(cwnd_before, 4 * 1460u);  // slow start has grown it

  // Take the link down long enough for an RTO, then restore it.
  pair.link.set_down(true);
  pair.net.run_for(sim::seconds(3));
  pair.link.set_down(false);
  pair.net.run_for(sim::milliseconds(100));
  EXPECT_GE(push.conn->stats().timeouts, 1u);
  pair.net.run();
  EXPECT_EQ(server.received.size(), 4u * 1024 * 1024);
}

TEST(TcpLoss, GivesUpAfterMaxRetransmits) {
  Pair pair;
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  TcpOptions options;
  options.max_retransmits = 5;
  options.max_rto = sim::seconds(2);
  BulkPush push(pair, server, 8 * 1024 * 1024, options);
  Errc reason = Errc::ok;
  push.conn->set_on_closed([&](Errc e) { reason = e; });
  pair.net.run_for(sim::milliseconds(300));
  ASSERT_GT(server.received.size(), 0u);

  pair.b.crash();  // server vanishes fail-stop
  pair.net.run_for(sim::seconds(60));
  EXPECT_EQ(reason, Errc::timed_out);
  EXPECT_EQ(push.conn->state(), TcpState::closed);
}

TEST(TcpLoss, ReceiverDeduplicatesRetransmittedData) {
  Pair pair;
  // Drop several ACK-direction frames to force retransmissions of data
  // the receiver already has.
  pair.link.set_loss_model(std::make_unique<testutil::DropNth>(
      std::vector<std::uint64_t>{4, 5, 6, 7, 8}));
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  BulkPush push(pair, server, 64 * 1024);
  pair.net.run();
  EXPECT_EQ(server.received.size(), 64u * 1024);
  EXPECT_EQ(fnv1a(server.received), fnv1a(ttcp_pattern(64 * 1024, 0)));
}

struct LossSweepParam {
  double loss;
  std::uint64_t seed;
};

class TcpLossSweep : public ::testing::TestWithParam<LossSweepParam> {};

TEST_P(TcpLossSweep, TransferIsExactUnderRandomLoss) {
  LossSweepParam param = GetParam();
  link::Link::Config config;
  config.loss_probability = param.loss;
  config.seed = param.seed;
  Pair pair(config, 1500, param.seed * 31 + 5);
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  const std::size_t total = 96 * 1024;
  BulkPush push(pair, server, total);
  pair.net.run(20'000'000);

  ASSERT_TRUE(server.eof) << "transfer did not finish (loss=" << param.loss
                          << " seed=" << param.seed << ")";
  EXPECT_EQ(server.received.size(), total);
  EXPECT_EQ(fnv1a(server.received), fnv1a(ttcp_pattern(total, 0)));
}

INSTANTIATE_TEST_SUITE_P(
    LossRatesAndSeeds, TcpLossSweep,
    ::testing::Values(LossSweepParam{0.01, 1}, LossSweepParam{0.01, 2},
                      LossSweepParam{0.03, 3}, LossSweepParam{0.03, 4},
                      LossSweepParam{0.05, 5}, LossSweepParam{0.05, 6},
                      LossSweepParam{0.10, 7}, LossSweepParam{0.10, 8},
                      LossSweepParam{0.15, 9}, LossSweepParam{0.20, 10}),
    [](const ::testing::TestParamInfo<LossSweepParam>& info) {
      return "loss" +
             std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_seed" + std::to_string(info.param.seed);
    });

class TcpBurstLossSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpBurstLossSweep, TransferSurvivesBurstyLoss) {
  link::Link::Config config;
  config.seed = GetParam();
  Pair pair(config, 1500, GetParam());
  link::GilbertElliottLoss::Params burst;
  burst.p_good = 0.005;
  burst.p_bad = 0.4;
  burst.p_good_to_bad = 0.01;
  burst.p_bad_to_good = 0.3;
  pair.link.set_loss_model(std::make_unique<link::GilbertElliottLoss>(burst));

  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80);
  const std::size_t total = 64 * 1024;
  BulkPush push(pair, server, total);
  pair.net.run(20'000'000);
  ASSERT_TRUE(server.eof);
  EXPECT_EQ(fnv1a(server.received), fnv1a(ttcp_pattern(total, 0)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpBurstLossSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace hydranet::tcp

namespace hydranet::tcp {
namespace {

using testutil::ip;
using testutil::Pair;
using apps::fnv1a;
using apps::ttcp_pattern;

// Option matrix under loss: every combination of Nagle, delayed ACKs and
// SACK must still deliver a byte-exact stream.
struct OptionMatrixParam {
  bool nodelay;
  bool delayed_ack;
  bool sack;
  std::uint64_t seed;
};

class TcpOptionMatrix : public ::testing::TestWithParam<OptionMatrixParam> {};

TEST_P(TcpOptionMatrix, LossyTransferIsExactForEveryOptionCombination) {
  OptionMatrixParam param = GetParam();
  link::Link::Config config;
  config.loss_probability = 0.05;
  config.seed = param.seed;
  Pair pair(config, 1500, param.seed * 13 + 1);

  TcpOptions options;
  options.nodelay = param.nodelay;
  options.delayed_ack = param.delayed_ack;
  options.sack = param.sack;
  testutil::ByteSinkServer server(pair.b, net::Ipv4Address(), 80, false,
                                  options);
  auto client = pair.a.tcp().connect(net::Ipv4Address(), {ip(10, 0, 0, 2), 80},
                                     options);
  auto conn = client.value();
  const std::size_t total = 96 * 1024;
  std::size_t written = 0;
  auto pump = [&, conn] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 4096);
      Bytes chunk = ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
    if (written >= total) conn->close();
  };
  conn->set_on_established(pump);
  conn->set_on_writable(pump);
  pair.net.run(30'000'000);
  ASSERT_TRUE(server.eof)
      << "nodelay=" << param.nodelay << " delack=" << param.delayed_ack
      << " sack=" << param.sack << " seed=" << param.seed;
  EXPECT_EQ(fnv1a(server.received), fnv1a(ttcp_pattern(total, 0)));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TcpOptionMatrix,
    ::testing::Values(OptionMatrixParam{false, false, false, 201},
                      OptionMatrixParam{true, false, false, 202},
                      OptionMatrixParam{false, true, false, 203},
                      OptionMatrixParam{false, false, true, 204},
                      OptionMatrixParam{true, true, false, 205},
                      OptionMatrixParam{true, false, true, 206},
                      OptionMatrixParam{false, true, true, 207},
                      OptionMatrixParam{true, true, true, 208}),
    [](const ::testing::TestParamInfo<OptionMatrixParam>& info) {
      std::string name;
      name += info.param.nodelay ? "nodelay_" : "nagle_";
      name += info.param.delayed_ack ? "delack_" : "immack_";
      name += info.param.sack ? "sack" : "reno";
      return name;
    });

}  // namespace
}  // namespace hydranet::tcp
