// Ablation beyond the paper: would SACK (RFC 2018 — contemporary with
// HydraNet-FT) have helped?
//
// The paper's §5 analysis blames "timeouts at the client, with successive
// re-transmission" for most FT-mode performance loss.  SACK attacks
// exactly that: multi-loss windows repair from the scoreboard instead of
// degenerating into RTOs.  This bench sweeps loss on the client's access
// link over the full FT testbed (primary + backup), with and without SACK.
#include "common/logging.hpp"
#include <cstdio>
#include <memory>

#include "bench_util.hpp"

namespace {

using namespace hydranet;

struct SackRow {
  double kBps = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retransmits = 0;
  bool finished = false;
};

SackRow run(double loss, bool bursty, bool sack, std::uint64_t seed) {
  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 1000;  // study loss, not failover
  config.seed = seed;
  testbed::Testbed bed(config);
  if (bursty) {
    link::GilbertElliottLoss::Params params;
    params.p_good = loss / 4;
    params.p_bad = 0.5;
    params.p_good_to_bad = loss;
    params.p_bad_to_good = 0.25;
    bed.client_link().set_loss_model(
        std::make_unique<link::GilbertElliottLoss>(params));
  } else if (loss > 0) {
    bed.client_link().set_loss_model(
        std::make_unique<link::BernoulliLoss>(loss));
  }

  tcp::TcpOptions options = apps::period_tcp_options();
  options.sack = sack;
  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port, options));
  }
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = 1024 * 1024;
  tx.write_size = 1024;
  tx.tcp = options;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  if (!transmitter.start().ok()) return {};
  bed.net().run_for(sim::seconds(600));

  SackRow row;
  row.finished = transmitter.report().finished;
  row.timeouts = transmitter.connection()->stats().timeouts;
  row.retransmits = transmitter.connection()->stats().retransmits +
                    transmitter.connection()->stats().sack_retransmits;
  for (auto& receiver : receivers) {
    for (const auto& report : receiver->reports()) {
      if (report.eof) row.kBps = std::max(row.kBps, report.throughput_kBps());
    }
  }
  return row;
}

void sweep(bool bursty) {
  std::printf("%-10s %12s %12s %10s %10s %12s %12s\n", "loss", "reno kB/s",
              "sack kB/s", "reno RTO", "sack RTO", "reno rtx", "sack rtx");
  for (double loss : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    SackRow reno = run(loss, bursty, false, 7);
    SackRow sack = run(loss, bursty, true, 7);
    std::printf("%-9.0f%% %12.1f %12.1f %10llu %10llu %12llu %12llu%s\n",
                loss * 100, reno.kBps, sack.kBps,
                static_cast<unsigned long long>(reno.timeouts),
                static_cast<unsigned long long>(sack.timeouts),
                static_cast<unsigned long long>(reno.retransmits),
                static_cast<unsigned long long>(sack.retransmits),
                reno.finished && sack.finished ? "" : "  [INCOMPLETE]");
  }
}

}  // namespace

int main() {
  hydranet::set_log_level(hydranet::LogLevel::error);
  std::printf("HydraNet-FT + SACK ablation (primary+backup testbed, 1 MB, "
              "1024-byte writes)\n\n");
  std::printf("-- independent (Bernoulli) loss on the client link --\n");
  sweep(false);
  std::printf("\n-- bursty (Gilbert-Elliott) loss on the client link --\n");
  sweep(true);
  std::printf("\nExpected: with loss present, SACK trims RTO counts and\n"
              "recovers throughput — attacking exactly the 'lengthy\n"
              "timeout' cost the paper identified.  The ft-TCP gating is\n"
              "SACK-safe: staged-but-undeposited data is never SACKed.\n");
  return 0;
}
