// Ablation for §4.3's failure-detection trade-off: "Setting the detection
// threshold in number of re-transmissions before action is taken is a
// trade-off between detection latency and chance of false positives."
//
// Part 1 sweeps the retransmission threshold and measures, after a primary
// crash mid-stream: detection latency (crash -> failure report), fail-over
// latency (crash -> client's stream resumes), and the client-visible stall.
//
// Part 2 runs healthy chains over a lossy client link and counts spurious
// eliminations (false positives) per threshold.
#include "common/logging.hpp"
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "net/tcp_header.hpp"
#include "stats/export.hpp"
#include "stats/timeline.hpp"

namespace {

using namespace hydranet;
using testbed::Setup;
using testbed::Testbed;
using testbed::TestbedConfig;

struct FailoverResult {
  double detection_ms = -1;  ///< crash -> first elimination at the redirector
  double report_ms = -1;     ///< crash -> failure report reaches redirector
  double promote_ms = -1;    ///< crash -> backup promoted to primary
  double resume_ms = -1;     ///< crash -> client acks pass the crash frontier
  double stall_ms = 0;       ///< longest client-visible progress gap
  bool completed = false;
};

FailoverResult measure_failover(int threshold) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = threshold;
  Testbed bed(config);

  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port));
  }
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = 16 * 1024 * 1024;
  tx.write_size = 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  if (!transmitter.start().ok()) return {};

  bed.net().run_for(sim::seconds(2));
  auto connection = transmitter.connection();
  sim::TimePoint crash_at = bed.net().now();
  bed.crash_server(0);

  FailoverResult result;
  std::uint64_t eliminations_before =
      bed.redirector_agent().stats().replicas_eliminated;
  std::uint32_t una_at_crash = connection->snd_una_wire();
  std::uint32_t frontier = connection->snd_nxt_wire();
  bool resumed = false;
  std::uint32_t last_una = una_at_crash;
  sim::TimePoint last_progress = bed.net().now();
  for (int step = 0; step < 30000; ++step) {
    bed.net().run_for(sim::milliseconds(10));
    if (result.detection_ms < 0 &&
        bed.redirector_agent().stats().replicas_eliminated >
            eliminations_before) {
      result.detection_ms = (bed.net().now() - crash_at).millis();
    }
    std::uint32_t una = connection->snd_una_wire();
    if (!resumed && net::seq::geq(una, frontier) &&
        net::seq::gt(una, una_at_crash)) {
      resumed = true;
      bed.client().record_event(stats::event::kStreamResumed,
                                "acks passed crash-time frontier");
    }
    if (una != last_una) {
      last_una = una;
      last_progress = bed.net().now();
    } else {
      double gap = (bed.net().now() - last_progress).millis();
      if (gap > result.stall_ms) result.stall_ms = gap;
    }
    if (transmitter.report().finished) {
      result.completed = true;
      break;
    }
    if (transmitter.report().failed) break;
  }
  stats::FailoverPhases phases =
      stats::failover_phases(bed.net().metrics().timeline());
  result.report_ms = phases.report_ms;
  result.promote_ms = phases.promote_ms;
  result.resume_ms = phases.resume_ms;
  // The timeline's elimination timestamp is exact; the polled one has
  // 10 ms granularity.  Prefer the exact value when present.
  if (phases.detection_ms >= 0) result.detection_ms = phases.detection_ms;
  return result;
}

std::uint64_t count_false_positives(int threshold,
                                    link::GilbertElliottLoss::Params burst,
                                    std::uint64_t seed) {
  TestbedConfig config;
  config.setup = Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = threshold;
  config.seed = seed;
  Testbed bed(config);
  // Bursty loss on the client's access link: ordinary congestion, not a
  // failure — eliminations here are false positives (a healthy replica
  // shut down).  Bursts produce the consecutive no-progress
  // retransmissions that low thresholds mistake for crashes.
  bed.client_link().set_loss_model(
      std::make_unique<link::GilbertElliottLoss>(burst));

  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port));
  }
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = 2 * 1024 * 1024;
  tx.write_size = 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  (void)transmitter.start();
  bed.net().run_for(sim::seconds(300));
  return bed.redirector_agent().stats().replicas_eliminated;
}

}  // namespace

int main() {
  hydranet::set_log_level(hydranet::LogLevel::error);
  std::printf("HydraNet-FT: failure-detection threshold trade-off (§4.3)\n\n");
  std::printf("-- Part 1: primary crash mid-stream, 1 backup --\n");
  std::printf("(detection counts client retransmissions, which arrive at\n"
              " the BSD RTO backoff cadence of ~1,2,4,8,... seconds — so\n"
              " latency grows roughly exponentially with the threshold)\n\n");
  std::printf("%-10s %12s %14s %12s %11s %11s %10s\n", "threshold",
              "report[ms]", "eliminate[ms]", "promote[ms]", "resume[ms]",
              "stall[ms]", "completed");
  for (int threshold : {2, 3, 4, 5, 6}) {
    FailoverResult r = measure_failover(threshold);
    std::printf("%-10d %12.1f %14.1f %12.1f %11.1f %11.0f %10s\n", threshold,
                r.report_ms, r.detection_ms, r.promote_ms, r.resume_ms,
                r.stall_ms, r.completed ? "yes" : "NO");
    std::printf("csv,failover,%d,%.1f,%.1f,%.1f,%.1f,%.0f,%d\n", threshold,
                r.report_ms, r.detection_ms, r.promote_ms, r.resume_ms,
                r.stall_ms, r.completed ? 1 : 0);
  }

  std::printf("\n-- Part 2: false positives on a healthy chain "
              "(2 MB transfer, bursty loss on the client link) --\n");
  std::printf("%-10s %14s %24s\n", "threshold", "burst loss",
              "spurious eliminations");
  link::GilbertElliottLoss::Params mild{0.005, 0.6, 0.01, 0.15};
  link::GilbertElliottLoss::Params harsh{0.01, 0.9, 0.03, 0.08};
  struct Case { const char* name; link::GilbertElliottLoss::Params params; };
  for (const Case& c : {Case{"mild", mild}, Case{"harsh", harsh}}) {
    for (int threshold : {2, 3, 4, 6}) {
      std::uint64_t fp = count_false_positives(
          threshold, c.params, 1000 + static_cast<std::uint64_t>(threshold));
      std::printf("%-10d %14s %24llu\n", threshold, c.name,
                  static_cast<unsigned long long>(fp));
    }
  }
  std::printf("\nExpected: detection latency grows with the threshold;\n"
              "low thresholds risk eliminating healthy replicas under\n"
              "bursty congestion (the paper's false-positive caution, and\n"
              "why the threshold must clear TCP's own loss recovery).\n");
  return 0;
}
