// Connection-scale benchmark: how many concurrent ESTABLISHED connections
// one simulated network (one thread) sustains, and what each idle
// connection costs.
//
// The ramp establishes 100k -> 500k -> 1M connections (capped by --packets)
// against a single server stack, spread over enough client hosts to stay
// inside each stack's ephemeral-port range.  At every level it reports:
//
//   - bytes per connection, measured from the server's slab arena
//     (bytes_reserved / live -- flat memory, no per-connection heap),
//   - pending scheduler events (the coalesced per-page timers make this
//     O(pages), not O(connections)),
//   - packets per wall second under a mixed load: every connection runs
//     keepalive off the shared page ticks while a sample of connections
//     pushes application data.
//
//   bench_connection_scale [--packets MAX_CONNS] [--json PATH]
//
// The flag is spelled --packets so tools/bench_check.py can drive this
// binary unchanged; the committed snapshot lives in BENCH_connscale.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/packet_buffer.hpp"
#include "common/slab.hpp"
#include "host/network.hpp"

namespace {

using namespace hydranet;

constexpr std::size_t kConnsPerClientHost = 25000;  // < ephemeral range
constexpr std::size_t kWave = 2048;                 // connects per burst
constexpr std::uint16_t kServicePort = 80;

struct ScaleResult {
  std::string name;
  std::size_t connections = 0;  ///< target level
  std::size_t accepted = 0;     ///< server-side established connections
  // Mixed idle/active measurement window.
  std::size_t packets = 0;  ///< TCP segments sent by any host in the window
  double wall_seconds = 0;
  double sim_seconds = 0;
  double packets_per_wall_second = 0;
  std::uint64_t keepalives = 0;  ///< probes sent inside the window
  // Ramp cost for this level's increment.
  double ramp_wall_seconds = 0;
  double conns_per_wall_second = 0;
  // Flat-memory accounting (server arena; client stacks mirror it).
  std::uint64_t arena_bytes = 0;
  std::uint64_t arena_live = 0;
  std::uint64_t arena_pages = 0;
  double bytes_per_conn = 0;
  // Process-wide slab + scheduler telemetry at the level.
  std::uint64_t slab_pages = 0;
  std::uint64_t slab_live = 0;
  std::uint64_t slab_allocated = 0;
  std::uint64_t slab_recycled = 0;
  std::uint64_t slab_bytes = 0;
  std::uint64_t pending_events = 0;
};

struct Fixture {
  host::Network net;
  host::Host* server = nullptr;
  std::vector<host::Host*> clients;
  std::vector<std::shared_ptr<tcp::TcpConnection>> client_conns;
  std::vector<std::shared_ptr<tcp::TcpConnection>> server_conns;
  std::size_t accepted = 0;
  net::Endpoint service{net::Ipv4Address(192, 20, 225, 20), kServicePort};
  tcp::TcpOptions options;

  explicit Fixture(std::size_t max_conns, std::size_t shards = 1)
      : net(42, shards) {
    // Every idle connection keeps keepalive running off the shared page
    // ticks; RTOs ride them too.  A short interval makes the idle cost
    // visible inside the measurement windows.
    options.keepalive_interval = sim::seconds(5);
    options.coalesce_timers = true;

    // The server stack is the convergence point; pin it to shard 0 and
    // spread the client hosts round-robin so every other shard carries a
    // slice of the connection fleet.
    server = &net.add_host("server", 0);
    server->v_host(service.address);

    const std::size_t hosts =
        (max_conns + kConnsPerClientHost - 1) / kConnsPerClientHost;
    link::Link::Config config;
    config.bandwidth_bps = 10e9;  // keep serialization off the critical path
    config.queue_capacity_packets = 4096;
    config.batch_frames = 8;  // rx bursts amortise the dispatch
    for (std::size_t i = 0; i < hosts; ++i) {
      host::Host& client = net.add_host("c" + std::to_string(i), i % shards);
      auto subnet = static_cast<std::uint8_t>(i + 1);
      net.connect(client, net::Ipv4Address(10, subnet, 0, 2), *server,
                  net::Ipv4Address(10, subnet, 0, 1), 24, config);
      client.ip().add_default_route(net::Ipv4Address(10, subnet, 0, 1),
                                    nullptr);
      clients.push_back(&client);
    }

    auto listener = server->tcp().listen(
        net::Ipv4Address(), kServicePort,
        [this](std::shared_ptr<tcp::TcpConnection> conn) {
          tcp::TcpConnection* raw = conn.get();
          raw->set_on_readable([raw] {
            for (;;) {
              auto data = raw->recv(64 * 1024);
              if (!data || data.value().empty()) return;
            }
          });
          server_conns.push_back(std::move(conn));
          accepted++;
        },
        options);
    if (!listener.ok()) std::abort();
  }

  /// Establishes connections until `target` are accepted, in paced waves so
  /// SYN bursts never outrun the link queues.
  bool ramp_to(std::size_t target) {
    std::size_t issued = client_conns.size();
    const sim::TimePoint deadline = net.now() + sim::seconds(600);
    while (accepted < target && net.now() < deadline) {
      std::size_t wave = 0;
      while (issued < target && wave < kWave) {
        host::Host& client = *clients[issued / kConnsPerClientHost];
        auto conn =
            client.tcp().connect(net::Ipv4Address(), service, options);
        if (!conn.ok()) return false;
        client_conns.push_back(conn.value());
        issued++;
        wave++;
      }
      net.run_for(sim::milliseconds(5));
    }
    return accepted >= target;
  }

  std::uint64_t total_segments_sent() const {
    std::uint64_t total =
        server->tcp().aggregate_stats().segments_sent;
    for (host::Host* client : clients) {
      total += client->tcp().aggregate_stats().segments_sent;
    }
    return total;
  }

  std::uint64_t total_keepalives() const {
    std::uint64_t total =
        server->tcp().aggregate_stats().keepalives_sent;
    for (host::Host* client : clients) {
      total += client->tcp().aggregate_stats().keepalives_sent;
    }
    return total;
  }
};

ScaleResult measure_level(Fixture& bed, std::size_t level) {
  ScaleResult result;
  result.connections = level;
  if (level >= 1000000 && level % 1000000 == 0) {
    result.name = "conns_" + std::to_string(level / 1000000) + "m";
  } else if (level >= 1000 && level % 1000 == 0) {
    result.name = "conns_" + std::to_string(level / 1000) + "k";
  } else {
    result.name = "conns_" + std::to_string(level);
  }

  const auto ramp_start = std::chrono::steady_clock::now();
  const std::size_t before = bed.accepted;
  if (!bed.ramp_to(level)) {
    std::fprintf(stderr, "error: ramp to %zu stalled at %zu\n", level,
                 bed.accepted);
    return result;
  }
  const auto ramp_end = std::chrono::steady_clock::now();
  result.ramp_wall_seconds =
      std::chrono::duration<double>(ramp_end - ramp_start).count();
  result.conns_per_wall_second =
      result.ramp_wall_seconds > 0
          ? static_cast<double>(bed.accepted - before) / result.ramp_wall_seconds
          : 0;
  result.accepted = bed.accepted;

  // Flat-memory accounting straight from the server's arena.
  const auto& arena = bed.server->tcp().arena();
  result.arena_bytes = arena.bytes_reserved();
  result.arena_live = arena.live();
  result.arena_pages = arena.page_count();
  result.bytes_per_conn =
      result.arena_live > 0
          ? static_cast<double>(result.arena_bytes) /
                static_cast<double>(result.arena_live)
          : 0;
  const SlabCounters& slab = slab_counters();
  result.slab_pages = slab.pages;
  result.slab_live = slab.live;
  result.slab_allocated = slab.allocated;
  result.slab_recycled = slab.recycled;
  result.slab_bytes = slab.bytes;
  result.pending_events = bed.net.scheduler().pending();

  // Mixed load: a sample of connections pushes 1 KiB of application data
  // while every established connection keeps its keepalive cadence going
  // (interval 5 s, so a 6 s window sees every idle connection probe).
  const std::size_t active =
      std::min<std::size_t>(10000, std::max<std::size_t>(1, level / 10));
  const std::size_t stride = std::max<std::size_t>(1, level / active);
  const Bytes payload(1024, 0x5a);
  const std::uint64_t segments_before = bed.total_segments_sent();
  const std::uint64_t keepalives_before = bed.total_keepalives();
  const auto wall_start = std::chrono::steady_clock::now();
  const sim::TimePoint sim_start = bed.net.now();
  for (std::size_t i = 0; i < bed.client_conns.size(); i += stride) {
    (void)bed.client_conns[i]->send(BytesView(payload));
  }
  bed.net.run_for(sim::seconds(6));
  const auto wall_end = std::chrono::steady_clock::now();

  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.sim_seconds = (bed.net.now() - sim_start).seconds();
  result.packets =
      static_cast<std::size_t>(bed.total_segments_sent() - segments_before);
  result.keepalives = bed.total_keepalives() - keepalives_before;
  result.packets_per_wall_second =
      result.wall_seconds > 0
          ? static_cast<double>(result.packets) / result.wall_seconds
          : 0;
  return result;
}

void write_json(const std::vector<ScaleResult>& results,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(f, "{\n  \"benchmark\": \"bench_connection_scale\",\n");
  std::fprintf(f, "  \"unit\": \"simulated packets per wall-clock second\",\n");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"packets\": %zu,\n", r.packets);
    std::fprintf(f, "      \"wall_seconds\": %.6f,\n", r.wall_seconds);
    std::fprintf(f, "      \"sim_seconds\": %.6f,\n", r.sim_seconds);
    std::fprintf(f, "      \"packets_per_wall_second\": %.1f,\n",
                 r.packets_per_wall_second);
    std::fprintf(f, "      \"scale\": {\n");
    std::fprintf(f, "        \"connections\": %zu,\n", r.connections);
    std::fprintf(f, "        \"accepted\": %zu,\n", r.accepted);
    std::fprintf(f, "        \"bytes_per_conn\": %.1f,\n", r.bytes_per_conn);
    std::fprintf(f, "        \"arena_bytes\": %llu,\n", u(r.arena_bytes));
    std::fprintf(f, "        \"arena_live\": %llu,\n", u(r.arena_live));
    std::fprintf(f, "        \"arena_pages\": %llu,\n", u(r.arena_pages));
    std::fprintf(f, "        \"pending_events\": %llu,\n",
                 u(r.pending_events));
    std::fprintf(f, "        \"keepalives_in_window\": %llu,\n",
                 u(r.keepalives));
    std::fprintf(f, "        \"ramp_wall_seconds\": %.3f,\n",
                 r.ramp_wall_seconds);
    std::fprintf(f, "        \"conns_per_wall_second\": %.1f\n",
                 r.conns_per_wall_second);
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"slab\": {\n");
    std::fprintf(f, "        \"pages\": %llu,\n", u(r.slab_pages));
    std::fprintf(f, "        \"live\": %llu,\n", u(r.slab_live));
    std::fprintf(f, "        \"allocated\": %llu,\n", u(r.slab_allocated));
    std::fprintf(f, "        \"recycled\": %llu,\n", u(r.slab_recycled));
    std::fprintf(f, "        \"bytes\": %llu\n", u(r.slab_bytes));
    std::fprintf(f, "      }\n");
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_conns = 1000000;
  std::size_t shards = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--packets") == 0 ||
         std::strcmp(argv[i], "--conns") == 0) &&
        i + 1 < argc) {
      max_conns = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--packets MAX_CONNS] [--shards N] "
                   "[--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<std::size_t> levels;
  for (std::size_t level : {100000u, 500000u, 1000000u}) {
    if (level <= max_conns) levels.push_back(level);
  }
  if (levels.empty()) levels.push_back(max_conns);

  Fixture bed(levels.back(), shards);
  std::vector<ScaleResult> results;
  for (std::size_t level : levels) {
    results.push_back(measure_level(bed, level));
    const ScaleResult& r = results.back();
    std::printf(
        "%-12s accepted=%zu bytes/conn=%.0f arena=%lluMB pages=%llu "
        "pending=%llu ramp=%.1fs (%.0f conn/s) mixed=%.0f pkt/s "
        "keepalives=%llu\n",
        r.name.c_str(), r.accepted, r.bytes_per_conn,
        static_cast<unsigned long long>(r.arena_bytes >> 20),
        static_cast<unsigned long long>(r.arena_pages),
        static_cast<unsigned long long>(r.pending_events),
        r.ramp_wall_seconds, r.conns_per_wall_second,
        r.packets_per_wall_second,
        static_cast<unsigned long long>(r.keepalives));
    if (r.accepted < r.connections) return 1;
  }
  if (!json_path.empty()) write_json(results, json_path);
  return 0;
}
