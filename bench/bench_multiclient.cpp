// Scaling with client count (§1 motivation: services "serving potentially
// many thousands of clients").
//
// N clients stream concurrently to the same fault-tolerant service; the
// table reports aggregate goodput, the per-client mean, and a fairness
// index.  The redirector (a 486 doing N-way tunnelling) is the shared
// bottleneck, so aggregate throughput should plateau while per-client
// shares divide fairly.
#include "common/logging.hpp"
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"

namespace {

using namespace hydranet;

struct FleetResult {
  double aggregate_kBps = 0;
  double mean_kBps = 0;
  double fairness = 0;  ///< Jain's index: 1.0 = perfectly fair
  int finished = 0;
};

FleetResult run_fleet(int clients, testbed::Setup setup) {
  testbed::TestbedConfig config;
  config.setup = setup;
  config.backups = 1;
  config.detector.retransmission_threshold = 1000;
  testbed::Testbed bed(config);

  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port));
  }
  const std::size_t per_client = 256 * 1024;
  std::vector<std::unique_ptr<apps::TtcpTransmitter>> fleet;
  for (int i = 0; i < clients; ++i) {
    apps::TtcpTransmitter::Config tx;
    tx.server = config.service;
    tx.total_bytes = per_client;
    tx.write_size = 1024;
    fleet.push_back(
        std::make_unique<apps::TtcpTransmitter>(bed.client(), tx));
    (void)fleet.back()->start();
  }
  bed.net().run_for(sim::seconds(900));

  FleetResult result;
  // Receiver-side per-connection throughputs at the primary.
  std::vector<double> rates;
  for (const auto& report : receivers[0]->reports()) {
    if (report.eof) rates.push_back(report.throughput_kBps());
  }
  for (const auto& transmitter : fleet) {
    if (transmitter->report().finished) result.finished++;
  }
  if (rates.empty()) return result;
  double sum = 0, sum_sq = 0;
  for (double r : rates) {
    sum += r;
    sum_sq += r * r;
  }
  result.mean_kBps = sum / static_cast<double>(rates.size());
  result.fairness =
      sum * sum / (static_cast<double>(rates.size()) * sum_sq);
  // Aggregate goodput: total bytes over the wall-clock span of the fleet.
  // Approximate with bytes / max elapsed (conservative).
  double max_elapsed = 0;
  std::size_t bytes = 0;
  for (const auto& report : receivers[0]->reports()) {
    if (!report.eof) continue;
    bytes += report.bytes_received;
    max_elapsed = std::max(
        max_elapsed, (report.eof_at - report.first_byte_at).seconds());
  }
  if (max_elapsed > 0) {
    result.aggregate_kBps = static_cast<double>(bytes) / 1000.0 / max_elapsed;
  }
  return result;
}

}  // namespace

int main() {
  hydranet::set_log_level(hydranet::LogLevel::error);
  std::printf("HydraNet-FT: concurrent-client scaling "
              "(256 kB per client, 1024-byte writes)\n\n");
  for (testbed::Setup setup : {testbed::Setup::primary_only,
                               testbed::Setup::primary_backup}) {
    std::printf("-- %s --\n", testbed::to_string(setup));
    std::printf("%-10s %16s %16s %12s %10s\n", "clients", "aggregate kB/s",
                "per-client kB/s", "fairness", "finished");
    for (int clients : {1, 2, 4, 8, 16}) {
      FleetResult r = run_fleet(clients, setup);
      std::printf("%-10d %16.1f %16.1f %12.3f %7d/%d\n", clients,
                  r.aggregate_kBps, r.mean_kBps, r.fairness, r.finished,
                  clients);
    }
    std::printf("\n");
  }
  std::printf("Expected: aggregate goodput saturates at the shared 486\n"
              "redirector; per-client shares divide with high fairness\n"
              "(Jain index near 1); every stream completes.\n");
  return 0;
}
