// Figure 4 reproduction: "ttcp Throughput Measurements for HydraNet-FT".
//
// Sweeps the application write size ("packet size": batching of small
// segments is off, so one write = one wire segment) over the paper's four
// configurations on the simulated testbed (two Pentium/120 servers, a 486
// redirector, a 486 client, 10 Mb/s links):
//
//   clean kernel        - stock software, direct path to the server
//   no redirection      - HydraNet-FT software installed, path unchanged
//   primary only        - redirection (IP-in-IP) to one replica
//   primary and backup  - FT multicast + acknowledgement-channel chain
//
// Also regenerates the §5 observation that throughput drops past the MTU:
// an extended sweep with a large MSS drives genuine IP fragmentation.
//
// Expected shape (the paper's, not its absolute numbers): throughput rises
// with write size (header processing amortises); each added mechanism
// costs a modest slice; the FT configuration stays within a reasonable
// factor of clean TCP; past the MTU the curve dips.
#include "common/logging.hpp"
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace hydranet;
using bench::run_ttcp;
using bench::sweep_total_bytes;
using testbed::Setup;
using testbed::TestbedConfig;

constexpr Setup kSetups[] = {Setup::clean, Setup::no_redirection,
                             Setup::primary_only, Setup::primary_backup};

void run_main_figure() {
  const std::size_t sizes[] = {16, 32, 64, 128, 256, 512, 1024};

  std::printf("== Figure 4: ttcp throughput vs packet size [kB/s] ==\n\n");
  std::printf("%-12s %14s %16s %14s %20s\n", "size[B]", "clean",
              "no-redirect", "primary", "primary+backup");

  std::vector<std::array<double, 4>> rows;
  std::vector<bench::TtcpMeasurement> ft_rows;  // primary+backup details
  std::uint64_t fastpath_hits = 0;
  std::uint64_t fastpath_misses = 0;
  for (std::size_t size : sizes) {
    std::array<double, 4> row{};
    for (int s = 0; s < 4; ++s) {
      TestbedConfig config;
      config.setup = kSetups[s];
      config.backups = 1;
      auto m = run_ttcp(config, size, sweep_total_bytes(size));
      row[static_cast<std::size_t>(s)] = m.throughput_kBps;
      fastpath_hits += m.fastpath_hits;
      fastpath_misses += m.fastpath_misses;
      if (kSetups[s] == Setup::primary_backup) ft_rows.push_back(m);
    }
    rows.push_back(row);
    std::printf("%-12zu %14.1f %16.1f %14.1f %20.1f\n", size, row[0], row[1],
                row[2], row[3]);
  }
  std::printf("\nTCP fast path over the whole sweep: %llu hits / %llu misses "
              "(%.1f%% hit rate)\n",
              static_cast<unsigned long long>(fastpath_hits),
              static_cast<unsigned long long>(fastpath_misses),
              fastpath_hits + fastpath_misses == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(fastpath_hits) /
                        static_cast<double>(fastpath_hits + fastpath_misses));

  std::printf("\ncsv,size,clean,no_redirect,primary,primary_backup,"
              "ft_deposit_stalls,ft_send_stalls,ft_ack_msgs,ft_copies\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("csv,%zu,%.1f,%.1f,%.1f,%.1f,%llu,%llu,%llu,%llu\n", sizes[i],
                rows[i][0], rows[i][1], rows[i][2], rows[i][3],
                static_cast<unsigned long long>(ft_rows[i].deposit_gate_stalls),
                static_cast<unsigned long long>(ft_rows[i].send_gate_stalls),
                static_cast<unsigned long long>(ft_rows[i].ack_channel_messages),
                static_cast<unsigned long long>(ft_rows[i].redirector_copies));
  }
}

void run_mtu_extension() {
  // Past-MTU behaviour (§5 text): with a TCP MSS above the wire MTU, each
  // large write leaves as one segment that IP must fragment — per-packet
  // costs multiply and throughput dips.
  std::printf("\n== Extension: write sizes across the MTU boundary "
              "(MSS 4096 > MTU 1500, IP fragmentation) [kB/s] ==\n\n");
  std::printf("%-12s %14s %20s %12s\n", "size[B]", "clean",
              "primary+backup", "fragments");

  const std::size_t sizes[] = {512, 1024, 1460, 1600, 2048, 3000, 4096};
  for (std::size_t size : sizes) {
    tcp::TcpOptions options = apps::period_tcp_options();
    options.mss = 4096;  // segments may exceed the MTU -> IP fragments

    TestbedConfig clean_config;
    clean_config.setup = Setup::clean;
    auto clean = run_ttcp(clean_config, size, sweep_total_bytes(size),
                          options);

    TestbedConfig ft_config;
    ft_config.setup = Setup::primary_backup;
    ft_config.backups = 1;
    auto ft = run_ttcp(ft_config, size, sweep_total_bytes(size), options);

    std::printf("%-12zu %14.1f %20.1f %12s\n", size, clean.throughput_kBps,
                ft.throughput_kBps, size + 40 > 1500 ? "yes" : "no");
  }
}

}  // namespace

int main() {
  hydranet::set_log_level(hydranet::LogLevel::error);
  std::printf("HydraNet-FT reproduction: Figure 4 (ICDCS 2000, §5)\n");
  std::printf("Simulated testbed: 486 client & redirector, Pentium/120 "
              "servers, 10 Mb/s links, 16 kB sockets, batching off.\n\n");
  run_main_figure();
  run_mtu_extension();

  std::printf("\nShape checks (paper):\n");
  std::printf("  * throughput rises with packet size\n");
  std::printf("  * clean >= no-redirection >= primary-only >= "
              "primary+backup, each gap modest\n");
  std::printf("  * FT mode 'not unreasonably lower' than clean TCP\n");
  std::printf("  * beyond the MTU the curve drops (fragmentation)\n");
  return 0;
}
