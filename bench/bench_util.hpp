// Shared measurement plumbing for the benchmark binaries.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/ttcp.hpp"
#include "testbed/testbed.hpp"

namespace hydranet::bench {

struct TtcpMeasurement {
  double throughput_kBps = 0;
  std::size_t bytes = 0;
  std::uint64_t client_retransmits = 0;
  std::uint64_t client_timeouts = 0;
  bool finished = false;
  double elapsed_s = 0;
  // From the testbed's metrics registry (0 for non-FT setups).
  std::uint64_t deposit_gate_stalls = 0;
  std::uint64_t send_gate_stalls = 0;
  std::uint64_t ack_channel_messages = 0;
  std::uint64_t redirector_copies = 0;
  // Hot-path telemetry (summed over every host in the testbed).
  std::uint64_t fastpath_hits = 0;
  std::uint64_t fastpath_misses = 0;
  std::uint64_t gate_cached_checks = 0;

  double fastpath_hit_rate() const {
    std::uint64_t total = fastpath_hits + fastpath_misses;
    return total == 0 ? 0 : static_cast<double>(fastpath_hits) /
                                static_cast<double>(total);
  }
};

/// Runs one ttcp measurement (client -> service) on a fresh testbed and
/// reports the receiver-side sustained throughput, the paper's metric.
inline TtcpMeasurement run_ttcp(testbed::TestbedConfig config,
                                std::size_t write_size,
                                std::size_t total_bytes,
                                tcp::TcpOptions tcp_options =
                                    apps::period_tcp_options(),
                                sim::Duration time_limit = sim::seconds(600)) {
  testbed::Testbed bed(config);

  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port,
        tcp_options));
  }

  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.write_size = write_size;
  tx.total_bytes = total_bytes;
  tx.tcp = tcp_options;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  if (!transmitter.start().ok()) return {};

  sim::TimePoint deadline = bed.net().now() + time_limit;
  while (bed.net().now() < deadline && !transmitter.report().finished &&
         !transmitter.report().failed) {
    bed.net().run_for(sim::milliseconds(500));
  }
  bed.net().run_for(sim::seconds(1));  // let the last EOF land

  TtcpMeasurement out;
  out.finished = transmitter.report().finished;
  if (transmitter.connection()) {
    out.client_retransmits = transmitter.connection()->stats().retransmits;
    out.client_timeouts = transmitter.connection()->stats().timeouts;
  }
  // The primary's receiver (or the plain server in clean mode) reports.
  for (auto& receiver : receivers) {
    for (const auto& report : receiver->reports()) {
      if (report.eof && report.bytes_received >= out.bytes) {
        out.bytes = report.bytes_received;
        out.throughput_kBps = report.throughput_kBps();
        out.elapsed_s = (report.eof_at - report.first_byte_at).seconds();
      }
    }
  }
  const stats::Registry& registry = bed.stats();
  out.deposit_gate_stalls = registry.total("ftcp.deposit_gate_stalls");
  out.send_gate_stalls = registry.total("ftcp.send_gate_stalls");
  out.ack_channel_messages = registry.total("ftcp.ack_channel_sent");
  out.redirector_copies = registry.total("redirector.copies_sent");
  out.fastpath_hits = registry.total("tcp.fastpath.hits");
  out.fastpath_misses = registry.total("tcp.fastpath.misses");
  out.gate_cached_checks = registry.total("ftcp.gate.cached_checks");
  return out;
}

/// total bytes that keep each measurement's simulated duration reasonable
/// across the write-size sweep (small writes are slow per byte).
inline std::size_t sweep_total_bytes(std::size_t write_size) {
  return std::clamp<std::size_t>(write_size * 1500, 96 * 1024,
                                 2 * 1024 * 1024);
}

}  // namespace hydranet::bench
