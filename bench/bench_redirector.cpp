// Redirector data-plane costs (§4.2: "One goal in HydraNet-FT was to keep
// the operation within redirectors as simple as possible").
//
// google-benchmark micro measurements of the redirector-table lookup as
// the table grows, plus simulated end-to-end comparisons of the three
// data-plane behaviours (miss/forward, scaled redirect, FT multicast).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "redirector/redirector.hpp"

namespace {

using namespace hydranet;

void BM_RedirectorTableLookup(benchmark::State& state) {
  host::Network net;
  host::Host& router = net.add_host("rd");
  router.add_interface("eth0", net::Ipv4Address(10, 0, 0, 1), 24);
  redirector::Redirector redirector(router);

  const auto entries = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < entries; ++i) {
    net::Endpoint service{net::Ipv4Address(0xC0000000u + i), 80};
    redirector.install_service(service, redirector::ServiceMode::scaled,
                               net::Ipv4Address(10, 0, 0, 2));
  }
  net::Endpoint probe{net::Ipv4Address(0xC0000000u + entries / 2), 80};
  for (auto _ : state) {
    benchmark::DoNotOptimize(redirector.lookup(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RedirectorTableLookup)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_RedirectorMissLookup(benchmark::State& state) {
  host::Network net;
  host::Host& router = net.add_host("rd");
  router.add_interface("eth0", net::Ipv4Address(10, 0, 0, 1), 24);
  redirector::Redirector redirector(router);
  for (std::uint32_t i = 0; i < 1024; ++i) {
    net::Endpoint service{net::Ipv4Address(0xC0000000u + i), 80};
    redirector.install_service(service, redirector::ServiceMode::scaled,
                               net::Ipv4Address(10, 0, 0, 2));
  }
  net::Endpoint miss{net::Ipv4Address(10, 9, 9, 9), 4242};
  for (auto _ : state) {
    benchmark::DoNotOptimize(redirector.lookup(miss));
  }
}
BENCHMARK(BM_RedirectorMissLookup);

/// Simulated per-datagram data-plane work, measured as wall time per
/// simulated UDP datagram pushed through the transit hook.
void BM_DataPlaneTransit(benchmark::State& state) {
  const bool fault_tolerant = state.range(0) == 2;
  const bool redirected = state.range(0) >= 1;

  host::Network net;
  host::Host& client = net.add_host("client");
  host::Host& router = net.add_host("rd");
  host::Host& s1 = net.add_host("s1");
  host::Host& s2 = net.add_host("s2");
  net.connect(client, net::Ipv4Address(10, 0, 1, 2), router,
              net::Ipv4Address(10, 0, 1, 1), 24);
  net.connect(router, net::Ipv4Address(10, 0, 2, 1), s1,
              net::Ipv4Address(10, 0, 2, 2), 24);
  net.connect(router, net::Ipv4Address(10, 0, 3, 1), s2,
              net::Ipv4Address(10, 0, 3, 2), 24);
  client.ip().add_default_route(net::Ipv4Address(10, 0, 1, 1), nullptr);
  redirector::Redirector redirector(router);

  net::Endpoint service{net::Ipv4Address(192, 20, 225, 20), 80};
  router.ip().add_route(service.address, 32, net::Ipv4Address(10, 0, 2, 2),
                        nullptr);
  s1.v_host(service.address);
  s2.v_host(service.address);
  if (redirected) {
    redirector.install_service(service,
                               fault_tolerant
                                   ? redirector::ServiceMode::fault_tolerant
                                   : redirector::ServiceMode::scaled,
                               net::Ipv4Address(10, 0, 2, 2));
    if (fault_tolerant) {
      (void)redirector.add_backup(service, net::Ipv4Address(10, 0, 3, 2));
    }
  }

  auto socket = client.udp().bind(net::Ipv4Address(), 0).value();
  Bytes payload(512, 0xaa);
  for (auto _ : state) {
    (void)socket->send_to(service, payload);
    net.run();
  }
  state.SetLabel(!redirected ? "forward-miss"
                 : fault_tolerant ? "ft-multicast"
                                  : "scaled-redirect");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DataPlaneTransit)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
