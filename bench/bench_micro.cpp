// Substrate micro-benchmarks (google-benchmark): wire-format serialisation,
// checksums, the event scheduler, and the reassembly buffer — the inner
// loops every simulated packet passes through.
#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "common/packet_buffer.hpp"
#include "common/rng.hpp"
#include "host/network.hpp"
#include "net/tcp_header.hpp"
#include "net/tunnel.hpp"
#include "sim/scheduler.hpp"
#include "tcp/reassembly.hpp"

namespace {

using namespace hydranet;

void BM_InternetChecksum(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(40)->Arg(576)->Arg(1500)->Arg(65536);

// Scalar reference path, pinned against the dispatched SIMD path above so
// the speedup on this machine is a measurement rather than a claim.
void BM_InternetChecksumScalar(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checksum_finish(checksum_accumulate_scalar(data, 0)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksumScalar)->Arg(576)->Arg(1500)->Arg(65536);

void BM_TcpSerialize(benchmark::State& state) {
  net::TcpSegment segment;
  segment.header.src_port = 40000;
  segment.header.dst_port = 80;
  segment.header.seq = 12345;
  segment.header.ack = 67890;
  segment.header.ack_flag = true;
  segment.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5a);
  net::Ipv4Address src(10, 0, 1, 2), dst(192, 20, 225, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::serialize_tcp(segment, src, dst));
  }
  state.SetBytesProcessed(state.iterations() * (state.range(0) + 20));
}
BENCHMARK(BM_TcpSerialize)->Arg(0)->Arg(512)->Arg(1460);

void BM_TcpParse(benchmark::State& state) {
  net::TcpSegment segment;
  segment.header.src_port = 40000;
  segment.header.dst_port = 80;
  segment.header.ack_flag = true;
  segment.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5a);
  net::Ipv4Address src(10, 0, 1, 2), dst(192, 20, 225, 20);
  Bytes wire = net::serialize_tcp(segment, src, dst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_tcp(wire, src, dst));
  }
  state.SetBytesProcessed(state.iterations() * (state.range(0) + 20));
}
BENCHMARK(BM_TcpParse)->Arg(0)->Arg(512)->Arg(1460);

void BM_Ipv4DatagramRoundTrip(benchmark::State& state) {
  net::Datagram datagram;
  datagram.header.protocol = net::IpProto::udp;
  datagram.header.src = net::Ipv4Address(1, 2, 3, 4);
  datagram.header.dst = net::Ipv4Address(5, 6, 7, 8);
  datagram.payload.assign(1024, 0x33);
  for (auto _ : state) {
    Bytes wire = datagram.serialize();
    benchmark::DoNotOptimize(net::Datagram::parse(wire));
  }
}
BENCHMARK(BM_Ipv4DatagramRoundTrip);

/// The redirector's one-to-many hotspot in isolation: serialise one inner
/// datagram, then build one tunnelled frame per replica.  With the shared
/// buffer datapath the per-replica cost is a fresh 20-byte outer header;
/// the inner kilobyte is never copied again.
void BM_RedirectorFanOut(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  net::Datagram inner;
  inner.header.protocol = net::IpProto::udp;
  inner.header.src = net::Ipv4Address(10, 0, 1, 2);
  inner.header.dst = net::Ipv4Address(192, 20, 225, 20);
  inner.payload.assign(1000, 0x5a);
  const net::Ipv4Address tunnel_src(10, 0, 1, 1);

  reset_datapath_counters();
  for (auto _ : state) {
    PacketBuffer wire = inner.to_frame();
    for (int i = 0; i < replicas; ++i) {
      net::Datagram outer = net::encapsulate_ipip(
          wire, tunnel_src, net::Ipv4Address(10, 0, 2, 2 + i));
      benchmark::DoNotOptimize(outer.to_frame());
    }
  }
  state.SetBytesProcessed(state.iterations() * replicas *
                          static_cast<std::int64_t>(inner.size() + 20));
  state.counters["copied_B/fanout"] = benchmark::Counter(
      static_cast<double>(datapath_counters().copied_bytes) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RedirectorFanOut)->Arg(1)->Arg(3)->Arg(7);

/// End-to-end cost of one simulated UDP packet crossing one link: socket
/// send, IP output, link transmit, IP input, demux, delivery.
void BM_OneHopUdpPacketPath(benchmark::State& state) {
  host::Network net;
  host::Host& a = net.add_host("a");
  host::Host& b = net.add_host("b");
  net.connect(a, net::Ipv4Address(10, 0, 0, 1), b,
              net::Ipv4Address(10, 0, 0, 2), 24);
  auto rx = b.udp().bind(net::Ipv4Address(), 9000).value();
  std::size_t received = 0;
  rx->set_rx_handler(
      [&received](const net::Endpoint&, CowBytes data) { received += data.size(); });
  auto tx = a.udp().bind(net::Ipv4Address(), 0).value();
  Bytes payload(static_cast<std::size_t>(state.range(0)), 0xaa);
  for (auto _ : state) {
    (void)tx->send_to({net::Ipv4Address(10, 0, 0, 2), 9000}, payload);
    net.run();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OneHopUdpPacketPath)->Arg(64)->Arg(1400);

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler scheduler;
    for (int i = 0; i < batch; ++i) {
      scheduler.schedule_after(sim::microseconds(i % 100), [] {});
    }
    scheduler.run();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(100)->Arg(10000);

void BM_SchedulerCancelChurn(benchmark::State& state) {
  // The retransmission-timer pattern: arm, cancel, re-arm continuously.
  sim::Scheduler scheduler;
  sim::TimerId timer = sim::kInvalidTimer;
  for (auto _ : state) {
    scheduler.cancel(timer);
    timer = scheduler.schedule_after(sim::seconds(1), [] {});
    scheduler.run_until(scheduler.now() + sim::microseconds(1));
  }
}
BENCHMARK(BM_SchedulerCancelChurn);

void BM_ReassemblyInOrder(benchmark::State& state) {
  Bytes chunk(1460, 0x77);
  for (auto _ : state) {
    tcp::ReassemblyBuffer buffer;
    std::uint64_t base = 0;
    for (int i = 0; i < 64; ++i) {
      (void)buffer.insert(base, chunk, base, base + (1 << 20));
      Bytes out = buffer.extract(base, base + chunk.size());
      benchmark::DoNotOptimize(out);
      base += chunk.size();
    }
  }
  state.SetBytesProcessed(state.iterations() * 64 * 1460);
}
BENCHMARK(BM_ReassemblyInOrder);

void BM_ReassemblyOutOfOrder(benchmark::State& state) {
  Bytes chunk(1460, 0x77);
  for (auto _ : state) {
    tcp::ReassemblyBuffer buffer;
    // 32 segments inserted back-to-front, then drained.
    for (int i = 31; i >= 0; --i) {
      (void)buffer.insert(static_cast<std::uint64_t>(i) * 1460, chunk, 0,
                          1 << 20);
    }
    Bytes out = buffer.extract(0, 32 * 1460);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 32 * 1460);
}
BENCHMARK(BM_ReassemblyOutOfOrder);

void BM_Fnv1aPattern(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint8_t b : data) {
      h ^= b;
      h *= 1099511628211ull;
    }
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fnv1aPattern)->Arg(1460);

}  // namespace

BENCHMARK_MAIN();
