// Ablation for §4.3's design choice: "In the current implementation we use
// a kernel-to-kernel UDP connection for the acknowledgement channel,
// trading low overhead against ... client re-transmissions if packets on
// the acknowledgement channel are lost."
//
// Sweeps random loss on the backup's link (which carries both the
// backup's copy of client data and its acknowledgement-channel reports)
// and shows the service survives with degraded throughput, paid for in
// client retransmissions and timeouts.
#include "common/logging.hpp"
#include <cstdio>
#include <memory>

#include "bench_util.hpp"

int main() {
  hydranet::set_log_level(hydranet::LogLevel::error);
  using namespace hydranet;

  std::printf("HydraNet-FT: acknowledgement-channel loss tolerance\n");
  std::printf("(Bernoulli loss on the redirector<->backup link; 1 MB, "
              "1024-byte writes)\n\n");
  std::printf("%-10s %14s %14s %12s %10s %16s\n", "loss", "kB/s",
              "client rtx", "timeouts", "finished", "backup coverage");

  for (double loss : {0.0, 0.01, 0.03, 0.05, 0.10, 0.20}) {
    testbed::TestbedConfig config;
    config.setup = testbed::Setup::primary_backup;
    config.backups = 1;
    // Detection must stay out of the way: this experiment studies loss
    // recovery, not shut-down policy.
    config.detector.retransmission_threshold = 1000;

    testbed::Testbed bed(config);
    bed.server_link(1).set_loss_model(
        std::make_unique<link::BernoulliLoss>(loss));

    std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
    for (std::size_t i = 0; i < bed.server_count(); ++i) {
      receivers.push_back(std::make_unique<apps::TtcpReceiver>(
          bed.server(i), config.service.address, config.service.port));
    }
    apps::TtcpTransmitter::Config tx;
    tx.server = config.service;
    tx.total_bytes = 1024 * 1024;
    tx.write_size = 1024;
    apps::TtcpTransmitter transmitter(bed.client(), tx);
    (void)transmitter.start();
    bed.net().run_for(sim::seconds(600));

    double kBps = 0;
    for (auto& receiver : receivers) {
      for (const auto& report : receiver->reports()) {
        if (report.eof) kBps = std::max(kBps, report.throughput_kBps());
      }
    }
    // How much of the stream the backup actually holds.  If the backup
    // missed the connection's SYN (possible at high loss), the ft layer
    // degrades to pass-through: the stream flows unprotected at this
    // replica rather than stalling (coverage ~0%).
    double coverage = tx.total_bytes > 0
                          ? 100.0 * static_cast<double>(
                                        receivers[1]->total_bytes()) /
                                static_cast<double>(tx.total_bytes)
                          : 0;
    auto connection = transmitter.connection();
    std::printf("%-9.0f%% %14.1f %14llu %12llu %10s %15.0f%%\n", loss * 100,
                kBps,
                static_cast<unsigned long long>(
                    connection->stats().retransmits),
                static_cast<unsigned long long>(connection->stats().timeouts),
                transmitter.report().finished ? "yes" : "NO", coverage);
  }

  std::printf(
      "\nExpected: every row finishes.  Each loss on the backup link stalls\n"
      "the primary's deposit gate until the client's (~1 s, BSD-style)\n"
      "retransmission timeout fires — the paper's observation that 'it is\n"
      "the lengthy timeout, not the re-transmission, which affects the\n"
      "performance'.  If the backup misses the SYN entirely, the replica\n"
      "degrades to pass-through (coverage ~0%%) instead of stalling.\n");
  return 0;
}
