// Ablation: throughput vs number of backups in the daisy chain.
//
// The paper measures one backup; this sweep shows how the ack-channel
// chain and the redirector's N-way multicast scale the overhead with the
// replication degree (0 = redirection only).
#include "common/logging.hpp"
#include <cstdio>

#include "bench_util.hpp"

int main() {
  hydranet::set_log_level(hydranet::LogLevel::error);
  using namespace hydranet;
  using bench::run_ttcp;

  std::printf("HydraNet-FT: throughput vs chain length (1024-byte writes)\n\n");
  std::printf("%-10s %16s %18s %18s\n", "backups", "kB/s", "vs clean",
              "client rtx");

  testbed::TestbedConfig clean;
  clean.setup = testbed::Setup::clean;
  auto baseline = run_ttcp(clean, 1024, 1024 * 1024);

  for (int backups = 0; backups <= 4; ++backups) {
    testbed::TestbedConfig config;
    config.setup = backups == 0 ? testbed::Setup::primary_only
                                : testbed::Setup::primary_backup;
    config.backups = backups;
    auto m = run_ttcp(config, 1024, 1024 * 1024);
    std::printf("%-10d %16.1f %17.0f%% %18llu\n", backups, m.throughput_kBps,
                100.0 * m.throughput_kBps / baseline.throughput_kBps,
                static_cast<unsigned long long>(m.client_retransmits +
                                                m.client_timeouts));
  }
  std::printf("\n(clean baseline: %.1f kB/s)\n", baseline.throughput_kBps);
  std::printf("Expected: overhead grows with each backup — one more tunnel\n"
              "copy through the 486 redirector and one more gating hop on\n"
              "the acknowledgement channel.\n");
  return 0;
}
