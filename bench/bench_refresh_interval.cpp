// Ablation: acknowledgement-channel refresh period.
//
// Backups re-announce their per-connection flow state to the predecessor
// every refresh interval.  The refresh is pure insurance — per-segment
// reports carry the live state — but it is what re-opens the gates after
// ack-channel loss or a chain rewire.  This sweep measures both sides of
// the trade: steady-state ack-channel message overhead, and the stall
// after a mid-chain rewire (middle backup crash) until the gates reopen.
#include "common/logging.hpp"
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "ftcp/ack_channel.hpp"

namespace {

using namespace hydranet;

struct RefreshResult {
  double throughput_kBps = 0;
  double channel_msgs_per_mb = 0;   ///< ack-channel messages per MB moved
  double heal_stall_ms = -1;        ///< receiver stall across a mid-chain crash
};

RefreshResult measure(sim::Duration refresh) {
  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 2;  // a middle backup to crash
  config.detector.retransmission_threshold = 3;
  config.ftcp_refresh_interval = refresh;
  testbed::Testbed bed(config);

  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port));
  }
  const std::size_t total = 4 * 1024 * 1024;
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = total;
  tx.write_size = 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  if (!transmitter.start().ok()) return {};

  // Steady phase: count channel messages per payload byte.
  std::uint64_t msgs_before = bed.agent(1).ack_channel().messages_sent() +
                              bed.agent(2).ack_channel().messages_sent();
  std::size_t bytes_before = receivers[0]->total_bytes();
  bed.net().run_for(sim::seconds(4));
  std::uint64_t msgs_after = bed.agent(1).ack_channel().messages_sent() +
                             bed.agent(2).ack_channel().messages_sent();
  std::size_t bytes_after = receivers[0]->total_bytes();

  RefreshResult result;
  double mb = static_cast<double>(bytes_after - bytes_before) / 1e6;
  if (mb > 0) {
    result.channel_msgs_per_mb =
        static_cast<double>(msgs_after - msgs_before) / mb;
  }

  // Heal phase: crash the middle backup, measure until the primary
  // receiver moves well past the crash point (64 kB clears any in-flight
  // pipeline residue, so this times the actual gate reopening).
  std::size_t resume_mark = receivers[0]->total_bytes() + 64 * 1024;
  sim::TimePoint crash_at = bed.net().now();
  bed.crash_server(1);
  for (int i = 0; i < 60000; ++i) {
    bed.net().run_for(sim::milliseconds(5));
    if (receivers[0]->total_bytes() >= resume_mark) {
      result.heal_stall_ms = (bed.net().now() - crash_at).millis();
      break;
    }
  }
  // Finish for the throughput number.
  bed.net().run_for(sim::seconds(120));
  for (auto& receiver : receivers) {
    for (const auto& report : receiver->reports()) {
      if (report.eof) {
        result.throughput_kBps =
            std::max(result.throughput_kBps, report.throughput_kBps());
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  hydranet::set_log_level(hydranet::LogLevel::error);
  std::printf("HydraNet-FT: acknowledgement-channel refresh-interval "
              "ablation (2 backups, 1024-byte writes)\n\n");
  std::printf("%-14s %14s %20s %22s\n", "refresh[ms]", "kB/s",
              "channel msgs/MB", "rewire stall[ms]");
  for (std::int64_t ms : {10, 25, 50, 100, 250, 1000}) {
    RefreshResult r = measure(sim::milliseconds(ms));
    std::printf("%-14lld %14.1f %20.0f %22.0f\n",
                static_cast<long long>(ms), r.throughput_kBps,
                r.channel_msgs_per_mb, r.heal_stall_ms);
  }
  std::printf(
      "\nFinding: channel overhead is dominated by per-segment reports\n"
      "(msgs/MB rises only ~45%% from 1 s down to 10 ms refresh), and the\n"
      "crash-heal time is dominated by failure DETECTION (the client's RTO\n"
      "backoff reaching the threshold), not by the refresh — the refresh\n"
      "only bounds the post-rewire gate reopening, which is noise by\n"
      "comparison.  The paper's choice of a cheap, unreliable channel with\n"
      "modest refresh insurance is therefore sound: aggressive refreshing\n"
      "buys nothing.\n");
  return 0;
}
