// Sustained packet-rate scenarios for the hot datapath: how many simulated
// packets per second of wall-clock time the simulator pushes through (a) a
// plain one-hop path, (b) a scaled redirect, (c) a fault-tolerant fan-out
// to several backups, and (d) TCP bulk transfers (plain and ft-TCP chain)
// that exercise the header-prediction fast path and the timing-wheel
// scheduler.
//
// Unlike the google-benchmark binaries this is a plain scenario runner so
// it can emit machine-readable results:
//
//   bench_packet_rate [--packets N] [--json PATH]
//
// With --json the results (rates plus the datapath copy/alloc counters)
// are written as a JSON document; the repo keeps a committed snapshot in
// BENCH_datapath.json.
//
// --shards 1,2,4,8 switches to the sharded-engine scaling sweep instead:
// a fixed fleet of one-hop pairs is partitioned across N engine shards
// (DESIGN.md §10) and the aggregate pkt/s per shard count is emitted —
// the committed snapshot is BENCH_shards.json, gated by
// tools/bench_check.py --shards.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/ttcp.hpp"
#include "common/inline_function.hpp"
#include "common/packet_buffer.hpp"
#include "host/network.hpp"
#include "redirector/redirector.hpp"
#include "testbed/testbed.hpp"
#include "trace2/recorder.hpp"

namespace {

using namespace hydranet;

struct ScenarioResult {
  std::string name;
  int replicas = 0;            ///< tunnelled copies per packet (0 = no tunnel)
  std::size_t packets = 0;
  std::size_t payload_bytes = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
  double packets_per_wall_second = 0;
  // Datapath counter deltas over the scenario.
  std::uint64_t copies = 0;
  std::uint64_t copied_bytes = 0;
  std::uint64_t allocations = 0;
  std::uint64_t cow_breaks = 0;
  std::uint64_t flattens = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t scheduler_heap_fallbacks = 0;
  // Redirector accounting (zero for the plain one-hop scenario).
  std::uint64_t redirected = 0;
  std::uint64_t copies_sent = 0;
  std::uint64_t inner_serializations = 0;
  /// copied_bytes the pre-zero-copy datapath would have spent duplicating
  /// the inner frame into every tunnel copy (inner wire size x copies).
  std::uint64_t naive_fanout_copy_bytes = 0;
  // Timing-wheel telemetry (deltas over the scenario).
  std::uint64_t wheel_inserts = 0;
  std::uint64_t wheel_cascades = 0;
  // TCP fast-path telemetry (zero for the UDP scenarios).
  std::uint64_t fastpath_hits = 0;
  std::uint64_t fastpath_misses = 0;
  std::uint64_t gate_cached_checks = 0;
  // Causal-tracer overhead probe (0 = tracing not installed).
  std::size_t trace_sample = 0;
  std::uint64_t spans_recorded = 0;

  double fastpath_hit_rate() const {
    std::uint64_t total = fastpath_hits + fastpath_misses;
    return total == 0 ? 0 : static_cast<double>(fastpath_hits) /
                                static_cast<double>(total);
  }
};

/// Streams `packets` UDP datagrams from a client through a redirector to a
/// service with `backups` backup replicas (backups < 0: no redirection at
/// all, plain one-hop delivery).
ScenarioResult run_scenario(const std::string& name, int backups,
                            std::size_t packets, std::size_t payload_bytes) {
  ScenarioResult result;
  result.name = name;
  result.packets = packets;
  result.payload_bytes = payload_bytes;

  host::Network net{42};
  host::Host& client = net.add_host("client");
  net::Endpoint service{net::Ipv4Address(192, 20, 225, 20), 80};
  std::size_t delivered = 0;
  auto attach_sink = [&](host::Host& server) {
    server.v_host(service.address);
    auto sink = server.udp().bind(service.address, 80).value();
    sink->set_rx_handler([&delivered](const net::Endpoint&, CowBytes data) {
      delivered += data.size();
    });
  };

  redirector::Redirector* redirector = nullptr;
  host::Host* rd = nullptr;
  if (backups < 0) {
    // Plain one-hop path: client -> server, no tunnel.
    host::Host& server = net.add_host("server");
    net.connect(client, net::Ipv4Address(10, 0, 1, 2), server,
                net::Ipv4Address(10, 0, 1, 1), 24);
    client.ip().add_default_route(net::Ipv4Address(10, 0, 1, 1), nullptr);
    attach_sink(server);
    result.replicas = 0;
  } else {
    rd = &net.add_host("rd");
    net.connect(client, net::Ipv4Address(10, 0, 1, 2), *rd,
                net::Ipv4Address(10, 0, 1, 1), 24);
    client.ip().add_default_route(net::Ipv4Address(10, 0, 1, 1), nullptr);
    redirector = new redirector::Redirector(*rd);
    rd->ip().add_route(service.address, 32, net::Ipv4Address(10, 0, 2, 2),
                       nullptr);
    for (int i = 0; i <= backups; ++i) {
      host::Host& server = net.add_host("s" + std::to_string(i + 1));
      auto subnet = static_cast<std::uint8_t>(2 + i);
      net.connect(*rd, net::Ipv4Address(10, 0, subnet, 1), server,
                  net::Ipv4Address(10, 0, subnet, 2), 24);
      server.ip().add_default_route(net::Ipv4Address(10, 0, subnet, 1),
                                    nullptr);
      attach_sink(server);
      if (i == 0) {
        redirector->install_service(
            service,
            backups > 0 ? redirector::ServiceMode::fault_tolerant
                        : redirector::ServiceMode::scaled,
            net::Ipv4Address(10, 0, subnet, 2));
      } else {
        (void)redirector->add_backup(service,
                                     net::Ipv4Address(10, 0, subnet, 2));
      }
    }
    result.replicas = backups + 1;
  }

  auto socket = client.udp().bind(net::Ipv4Address(), 0).value();
  Bytes payload(payload_bytes, 0xaa);

  reset_datapath_counters();
  const std::uint64_t heap_before = inline_function_heap_allocs();
  const std::uint64_t inserts_before = net.scheduler().wheel_inserts();
  const std::uint64_t cascades_before = net.scheduler().wheel_cascades();
  const auto wall_start = std::chrono::steady_clock::now();
  const sim::TimePoint sim_start = net.now();
  for (std::size_t i = 0; i < packets; ++i) {
    (void)socket->send_to(service, payload);
    net.run();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.sim_seconds = (net.now() - sim_start).seconds();
  result.packets_per_wall_second =
      result.wall_seconds > 0 ? static_cast<double>(packets) / result.wall_seconds
                              : 0;
  const DatapathCounters& dp = datapath_counters();
  result.copies = dp.copies;
  result.copied_bytes = dp.copied_bytes;
  result.allocations = dp.allocations;
  result.cow_breaks = dp.cow_breaks;
  result.flattens = dp.flattens;
  result.pool_hits = dp.pool_hits;
  result.pool_misses = dp.pool_misses;
  result.scheduler_heap_fallbacks =
      inline_function_heap_allocs() - heap_before;
  result.wheel_inserts = net.scheduler().wheel_inserts() - inserts_before;
  result.wheel_cascades = net.scheduler().wheel_cascades() - cascades_before;
  if (redirector != nullptr) {
    result.redirected = redirector->stats().redirected_datagrams;
    result.copies_sent = redirector->stats().copies_sent;
    result.inner_serializations = redirector->stats().inner_serializations;
    // Inner wire = 20B IP header + 8B UDP header + payload, duplicated into
    // every tunnel copy by the old memcpy-per-replica fan-out.
    result.naive_fanout_copy_bytes =
        result.copies_sent * (20 + 8 + payload_bytes);
  }
  if (delivered == 0) std::fprintf(stderr, "warning: nothing delivered\n");
  delete redirector;
  return result;
}

/// Streams `total_bytes` over TCP in 1024-byte writes — plain one-hop for
/// backups < 0, an ft-TCP chain through the redirector otherwise — and
/// counts wire segments per wall second.  This is the workload the header
/// prediction fast path and the ftcp gate cache are built for.
ScenarioResult run_tcp_scenario(const std::string& name, int backups,
                                std::size_t total_bytes,
                                std::size_t trace_sample = 0) {
  ScenarioResult result;
  result.name = name;
  result.payload_bytes = 1024;
  result.trace_sample = trace_sample;

  testbed::TestbedConfig config;
  config.setup =
      backups < 0 ? testbed::Setup::clean : testbed::Setup::primary_backup;
  config.backups = backups < 0 ? 1 : backups;
  result.replicas = backups < 0 ? 0 : backups + 1;
  testbed::Testbed bed(config);

  std::vector<std::unique_ptr<apps::TtcpReceiver>> receivers;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    receivers.push_back(std::make_unique<apps::TtcpReceiver>(
        bed.server(i), config.service.address, config.service.port));
  }
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = total_bytes;
  tx.write_size = 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx);

  // Tracing-overhead scenarios: install a recorder for the duration of
  // the run, exactly as `hydranet-sim --trace --trace-sample=N` would.
  std::unique_ptr<trace2::Recorder> recorder;
  std::unique_ptr<trace2::ScopedRecorder> installed;
  if (trace_sample > 0 && trace2::kEnabled) {
    trace2::Recorder::Config trace_config;
    trace_config.sample_every = trace_sample;
    recorder = std::make_unique<trace2::Recorder>(bed.net().scheduler(),
                                                  trace_config);
    installed = std::make_unique<trace2::ScopedRecorder>(*recorder);
  }

  reset_datapath_counters();
  const std::uint64_t heap_before = inline_function_heap_allocs();
  const std::uint64_t inserts_before = bed.net().scheduler().wheel_inserts();
  const std::uint64_t cascades_before = bed.net().scheduler().wheel_cascades();
  const auto wall_start = std::chrono::steady_clock::now();
  const sim::TimePoint sim_start = bed.net().now();

  (void)transmitter.start();
  while (!transmitter.report().finished && !transmitter.report().failed &&
         (bed.net().now() - sim_start) < sim::seconds(600)) {
    bed.net().run_for(sim::milliseconds(500));
  }
  const auto wall_end = std::chrono::steady_clock::now();

  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.sim_seconds = (bed.net().now() - sim_start).seconds();

  stats::Registry& registry = bed.stats();
  // "Packets" here means wire segments: everything any host put on a link.
  result.packets = static_cast<std::size_t>(registry.total("tcp.segments_out"));
  result.packets_per_wall_second =
      result.wall_seconds > 0
          ? static_cast<double>(result.packets) / result.wall_seconds
          : 0;
  result.fastpath_hits = registry.total("tcp.fastpath.hits");
  result.fastpath_misses = registry.total("tcp.fastpath.misses");
  result.gate_cached_checks = registry.total("ftcp.gate.cached_checks");
  const DatapathCounters& dp = datapath_counters();
  result.copies = dp.copies;
  result.copied_bytes = dp.copied_bytes;
  result.allocations = dp.allocations;
  result.cow_breaks = dp.cow_breaks;
  result.flattens = dp.flattens;
  result.pool_hits = dp.pool_hits;
  result.pool_misses = dp.pool_misses;
  result.scheduler_heap_fallbacks = inline_function_heap_allocs() - heap_before;
  result.wheel_inserts = bed.net().scheduler().wheel_inserts() - inserts_before;
  result.wheel_cascades =
      bed.net().scheduler().wheel_cascades() - cascades_before;
  if (recorder != nullptr) result.spans_recorded = recorder->spans_recorded();
  if (!transmitter.report().finished) {
    std::fprintf(stderr, "warning: %s did not finish\n", name.c_str());
  }
  return result;
}

// ---- sharded-engine scaling sweep (--shards) ----------------------------

struct ShardResult {
  std::string name;
  std::size_t shards = 0;
  std::size_t pairs = 0;
  bool cross = false;  ///< pairs straddle a shard boundary
  std::size_t packets = 0;  ///< datagrams delivered, all pairs summed
  double wall_seconds = 0;
  double sim_seconds = 0;
  double packets_per_wall_second = 0;
  sim::ShardEngine::Counters engine;
};

/// One independent one-hop UDP flow; the send loop reschedules itself on
/// the client's own shard so the whole sweep is a single engine run.
struct ShardFlow {
  udp::UdpSocket* socket = nullptr;
  sim::Scheduler* clock = nullptr;
  net::Endpoint service;
  Bytes payload;
  std::size_t remaining = 0;
  sim::Duration gap{};
  std::size_t delivered = 0;  ///< written on the server's shard

  void tick() {
    (void)socket->send_to(service, payload);
    if (--remaining == 0) return;
    clock->schedule_at(clock->now() + gap, [this] { tick(); });
  }
};

/// `pairs` independent client->server pairs, each pair pinned to one
/// shard (cross == false) or split across two neighbouring shards
/// (cross == true).  The workload is identical at every shard count —
/// only the partitioning changes — so rates compose into a scaling
/// curve.
ShardResult run_shard_scenario(std::size_t shards, bool cross,
                               std::size_t pairs,
                               std::size_t packets_per_pair,
                               std::size_t payload_bytes) {
  ShardResult result;
  result.name = (cross ? "cross_shard_s" : "one_hop_s") +
                std::to_string(shards);
  result.shards = shards;
  result.pairs = pairs;
  result.cross = cross;

  host::Network net{42, shards};
  link::Link::Config link_config;
  link_config.bandwidth_bps = 10e9;  // serialization off the critical path
  std::vector<std::unique_ptr<ShardFlow>> flows;
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::size_t client_shard = i % shards;
    const std::size_t server_shard = cross ? (i + 1) % shards : client_shard;
    host::Host& client =
        net.add_host("c" + std::to_string(i), client_shard);
    host::Host& server =
        net.add_host("s" + std::to_string(i), server_shard);
    auto subnet = static_cast<std::uint8_t>(i + 1);
    net.connect(client, net::Ipv4Address(10, subnet, 0, 2), server,
                net::Ipv4Address(10, subnet, 0, 1), 24, link_config);

    auto flow = std::make_unique<ShardFlow>();
    flow->service = {net::Ipv4Address(10, subnet, 0, 1), 80};
    auto sink = server.udp().bind(flow->service.address, 80).value();
    ShardFlow* raw = flow.get();
    sink->set_rx_handler([raw](const net::Endpoint&, CowBytes data) {
      if (!data.empty()) raw->delivered++;
    });
    flow->socket = client.udp().bind(net::Ipv4Address(), 0).value();
    flow->clock = &client.scheduler();
    flow->payload = Bytes(payload_bytes, 0xaa);
    flow->remaining = packets_per_pair;
    flow->gap = sim::microseconds(1);  // > 0.8us serialization: queues empty
    net.schedule_on(client, net.now() + sim::microseconds(1),
                    [raw] { raw->tick(); });
    flows.push_back(std::move(flow));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const sim::TimePoint sim_start = net.now();
  net.run();
  const auto wall_end = std::chrono::steady_clock::now();

  for (const auto& flow : flows) result.packets += flow->delivered;
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.sim_seconds = (net.now() - sim_start).seconds();
  result.packets_per_wall_second =
      result.wall_seconds > 0
          ? static_cast<double>(result.packets) / result.wall_seconds
          : 0;
  result.engine = net.engine().counters_total();
  if (result.packets < pairs * packets_per_pair) {
    std::fprintf(stderr, "warning: %s delivered %zu of %zu datagrams\n",
                 result.name.c_str(), result.packets,
                 pairs * packets_per_pair);
  }
  return result;
}

void write_shards_json(const std::vector<ShardResult>& results,
                       const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(f, "{\n  \"benchmark\": \"bench_packet_rate\",\n");
  std::fprintf(f, "  \"mode\": \"shards\",\n");
  std::fprintf(
      f, "  \"unit\": \"aggregate simulated packets per wall-clock second\",\n");
  // The scaling gate is meaningless without the cores to scale onto;
  // bench_check.py --shards reads this to decide whether to enforce it.
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShardResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"shards\": %zu,\n", r.shards);
    std::fprintf(f, "      \"pairs\": %zu,\n", r.pairs);
    std::fprintf(f, "      \"cross_shard\": %s,\n", r.cross ? "true" : "false");
    std::fprintf(f, "      \"packets\": %zu,\n", r.packets);
    std::fprintf(f, "      \"wall_seconds\": %.6f,\n", r.wall_seconds);
    std::fprintf(f, "      \"sim_seconds\": %.6f,\n", r.sim_seconds);
    std::fprintf(f, "      \"packets_per_wall_second\": %.1f,\n",
                 r.packets_per_wall_second);
    std::fprintf(f, "      \"engine\": {\n");
    std::fprintf(f, "        \"events\": %llu,\n", u(r.engine.events));
    std::fprintf(f, "        \"epochs\": %llu,\n", u(r.engine.epochs));
    std::fprintf(f, "        \"mailbox_posted\": %llu,\n",
                 u(r.engine.mailbox_posted));
    std::fprintf(f, "        \"mailbox_drained\": %llu,\n",
                 u(r.engine.mailbox_drained));
    std::fprintf(f, "        \"mailbox_overflows\": %llu\n",
                 u(r.engine.mailbox_overflows));
    std::fprintf(f, "      }\n");
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run_shard_sweep(const std::vector<std::size_t>& shard_counts,
                    std::size_t packets, const std::string& json_path) {
  // The fleet size is fixed across the sweep (workload identical, only
  // the partitioning changes) and divides every swept shard count.
  constexpr std::size_t kPairs = 8;
  const std::size_t per_pair = std::max<std::size_t>(1, packets / kPairs);
  std::vector<ShardResult> results;
  for (std::size_t shards : shard_counts) {
    results.push_back(
        run_shard_scenario(shards, /*cross=*/false, kPairs, per_pair, 1000));
    results.push_back(
        run_shard_scenario(shards, /*cross=*/true, kPairs, per_pair, 1000));
  }
  for (const ShardResult& r : results) {
    std::printf(
        "%-16s shards=%zu pairs=%zu packets=%zu wall=%.3fs rate=%.0f pkt/s "
        "epochs=%llu mailbox=%llu/%llu overflows=%llu\n",
        r.name.c_str(), r.shards, r.pairs, r.packets, r.wall_seconds,
        r.packets_per_wall_second,
        static_cast<unsigned long long>(r.engine.epochs),
        static_cast<unsigned long long>(r.engine.mailbox_posted),
        static_cast<unsigned long long>(r.engine.mailbox_drained),
        static_cast<unsigned long long>(r.engine.mailbox_overflows));
  }
  if (!json_path.empty()) write_shards_json(results, json_path);
  return 0;
}

void write_json(const std::vector<ScenarioResult>& results,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_packet_rate\",\n");
  std::fprintf(f, "  \"unit\": \"simulated packets per wall-clock second\",\n");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"replicas\": %d,\n", r.replicas);
    std::fprintf(f, "      \"packets\": %zu,\n", r.packets);
    std::fprintf(f, "      \"payload_bytes\": %zu,\n", r.payload_bytes);
    std::fprintf(f, "      \"wall_seconds\": %.6f,\n", r.wall_seconds);
    std::fprintf(f, "      \"sim_seconds\": %.6f,\n", r.sim_seconds);
    std::fprintf(f, "      \"packets_per_wall_second\": %.1f,\n",
                 r.packets_per_wall_second);
    std::fprintf(f, "      \"datapath\": {\n");
    std::fprintf(f, "        \"copies\": %llu,\n",
                 static_cast<unsigned long long>(r.copies));
    std::fprintf(f, "        \"copied_bytes\": %llu,\n",
                 static_cast<unsigned long long>(r.copied_bytes));
    std::fprintf(f, "        \"allocations\": %llu,\n",
                 static_cast<unsigned long long>(r.allocations));
    std::fprintf(f, "        \"cow_breaks\": %llu,\n",
                 static_cast<unsigned long long>(r.cow_breaks));
    std::fprintf(f, "        \"flattens\": %llu,\n",
                 static_cast<unsigned long long>(r.flattens));
    std::fprintf(f, "        \"pool_hits\": %llu,\n",
                 static_cast<unsigned long long>(r.pool_hits));
    std::fprintf(f, "        \"pool_misses\": %llu,\n",
                 static_cast<unsigned long long>(r.pool_misses));
    std::fprintf(f, "        \"scheduler_heap_fallbacks\": %llu\n",
                 static_cast<unsigned long long>(r.scheduler_heap_fallbacks));
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"scheduler\": {\n");
    std::fprintf(f, "        \"wheel_inserts\": %llu,\n",
                 static_cast<unsigned long long>(r.wheel_inserts));
    std::fprintf(f, "        \"wheel_cascades\": %llu\n",
                 static_cast<unsigned long long>(r.wheel_cascades));
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"trace\": {\n");
    std::fprintf(f, "        \"sample_every\": %zu,\n", r.trace_sample);
    std::fprintf(f, "        \"spans_recorded\": %llu\n",
                 static_cast<unsigned long long>(r.spans_recorded));
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"tcp\": {\n");
    std::fprintf(f, "        \"fastpath_hits\": %llu,\n",
                 static_cast<unsigned long long>(r.fastpath_hits));
    std::fprintf(f, "        \"fastpath_misses\": %llu,\n",
                 static_cast<unsigned long long>(r.fastpath_misses));
    std::fprintf(f, "        \"fastpath_hit_rate\": %.4f,\n",
                 r.fastpath_hit_rate());
    std::fprintf(f, "        \"gate_cached_checks\": %llu\n",
                 static_cast<unsigned long long>(r.gate_cached_checks));
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"redirector\": {\n");
    std::fprintf(f, "        \"redirected_datagrams\": %llu,\n",
                 static_cast<unsigned long long>(r.redirected));
    std::fprintf(f, "        \"copies_sent\": %llu,\n",
                 static_cast<unsigned long long>(r.copies_sent));
    std::fprintf(f, "        \"inner_serializations\": %llu,\n",
                 static_cast<unsigned long long>(r.inner_serializations));
    std::fprintf(f, "        \"naive_fanout_copy_bytes\": %llu\n",
                 static_cast<unsigned long long>(r.naive_fanout_copy_bytes));
    std::fprintf(f, "      }\n");
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t packets = 20000;
  std::string json_path;
  std::vector<std::size_t> shard_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      // Comma-separated sweep list, e.g. --shards 1,2,4,8.
      std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        shard_counts.push_back(static_cast<std::size_t>(
            std::stoull(list.substr(pos, comma - pos))));
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--packets N] [--json PATH] [--shards 1,2,4,8]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!shard_counts.empty()) {
    return run_shard_sweep(shard_counts, packets, json_path);
  }

  std::vector<ScenarioResult> results;
  results.push_back(run_scenario("one_hop_udp", -1, packets, 1000));
  results.push_back(run_scenario("scaled_redirect", 0, packets, 1000));
  results.push_back(run_scenario("ft_fanout_3_backups", 3, packets, 1000));
  // TCP scenarios scale with --packets too: ~one 1024-byte write each.
  results.push_back(run_tcp_scenario("tcp_bulk_one_hop", -1, packets * 1024));
  results.push_back(
      run_tcp_scenario("tcp_ft_chain_1_backup", 1, packets * 1024));
#if HYDRANET_TRACING
  // Tracer-overhead column: the same ft chain with the causal tracer
  // installed at sample=1 (every root) and sample=64 (1-in-64 roots).
  // Only built when the tracer is compiled in; tracing-OFF builds keep
  // the scenario list identical to the committed baseline.
  results.push_back(
      run_tcp_scenario("tcp_ft_chain_trace1", 1, packets * 1024, 1));
  results.push_back(
      run_tcp_scenario("tcp_ft_chain_trace64", 1, packets * 1024, 64));
#endif

  for (const ScenarioResult& r : results) {
    std::printf(
        "%-22s replicas=%d packets=%zu wall=%.3fs rate=%.0f pkt/s "
        "copied=%lluB (naive fan-out would copy %lluB) "
        "inner_serializations=%llu sched_heap=%llu "
        "wheel=%llu/%llu fastpath=%.1f%% gate_cached=%llu"
        "%s\n",
        r.name.c_str(), r.replicas, r.packets, r.wall_seconds,
        r.packets_per_wall_second,
        static_cast<unsigned long long>(r.copied_bytes),
        static_cast<unsigned long long>(r.naive_fanout_copy_bytes),
        static_cast<unsigned long long>(r.inner_serializations),
        static_cast<unsigned long long>(r.scheduler_heap_fallbacks),
        static_cast<unsigned long long>(r.wheel_inserts),
        static_cast<unsigned long long>(r.wheel_cascades),
        100.0 * r.fastpath_hit_rate(),
        static_cast<unsigned long long>(r.gate_cached_checks),
        r.trace_sample > 0
            ? (" trace_sample=" + std::to_string(r.trace_sample) + " spans=" +
               std::to_string(r.spans_recorded))
                  .c_str()
            : "");
  }
  if (!json_path.empty()) write_json(results, json_path);
  return 0;
}
