// The paper's §1 motivation: "During live Web broadcasts ... the video
// service serving potentially many thousands of clients with live action
// must guarantee uninterrupted broadcast."
//
// A streaming source pushes a fixed-rate media stream over a replicated
// fault-tolerant service.  The primary is crashed mid-stream; the client
// measures its stalls.  The broadcast completes on the same connection,
// with the fail-over visible only as one bounded hiccup.
#include "common/logging.hpp"
#include <cstdio>

#include "apps/stream.hpp"
#include "apps/ttcp.hpp"
#include "testbed/testbed.hpp"

using namespace hydranet;

int main() {
  set_log_level(LogLevel::error);

  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 2;  // a deeper chain than the paper's testbed
  config.detector.retransmission_threshold = 3;
  testbed::Testbed bed(config);

  // The media source runs on every replica (same program, same state).
  apps::StreamingSource::Config source_config;
  source_config.listen_address = config.service.address;
  source_config.port = config.service.port;
  source_config.chunk_size = 1400;        // ~ one segment per video frame
  source_config.interval = sim::milliseconds(15);  // ~67 chunks/s
  source_config.total_bytes = 4 * 1024 * 1024;
  source_config.tcp = apps::period_tcp_options();
  std::vector<std::unique_ptr<apps::StreamingSource>> sources;
  for (std::size_t i = 0; i < bed.server_count(); ++i) {
    sources.push_back(
        std::make_unique<apps::StreamingSource>(bed.server(i), source_config));
  }

  // The viewer: a stock TCP client recording inter-arrival gaps.
  apps::StreamingSink::Config sink_config;
  sink_config.server = config.service;
  sink_config.stall_threshold = sim::milliseconds(200);
  sink_config.tcp = apps::period_tcp_options();
  apps::StreamingSink viewer(bed.client(), sink_config);
  if (!viewer.start().ok()) return 1;

  std::printf("broadcast: %zu replicas streaming %.1f MB at ~%.0f kB/s\n",
              bed.server_count(),
              static_cast<double>(source_config.total_bytes) / 1e6,
              1400.0 / 0.015 / 1000);

  // Let the broadcast run, then kill the primary mid-stream.
  bed.net().run_for(sim::seconds(10));
  std::printf("t=%.1fs: viewer has %zu bytes; primary crashes NOW\n",
              bed.net().now().seconds(), viewer.report().bytes);
  bed.crash_server(0);

  bed.net().run_for(sim::seconds(120));

  const auto& report = viewer.report();
  std::printf("\nbroadcast %s: %zu bytes received\n",
              report.eof ? "completed" : "INCOMPLETE", report.bytes);
  std::printf("stream integrity: %s\n",
              report.bytes == source_config.total_bytes &&
                      report.checksum ==
                          apps::fnv1a(apps::ttcp_pattern(
                              source_config.total_bytes, 0))
                  ? "byte-exact"
                  : "CORRUPT");
  std::printf("viewer-visible stalls over %ldms: %zu, worst %.0f ms "
              "(the fail-over hiccup)\n",
              static_cast<long>(sink_config.stall_threshold.ns / 1000000),
              report.stalls.size(), report.max_gap.millis());

  auto chain = bed.redirector_agent().chain(config.service);
  std::printf("surviving chain after fail-over: %zu replicas\n", chain.size());
  return report.eof && report.bytes == source_config.total_bytes ? 0 : 1;
}
