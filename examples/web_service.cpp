// The paper's Figure 2 scenario: HydraNet service *scaling*.
//
// www.northwest.com's web service (httpd on the origin host) is replicated
// to a host server near a remote client population (the a_httpd replica).
// The redirector intercepts port-80 traffic for the origin's IP and
// tunnels it to the nearby replica; telnet traffic (port 23) to the very
// same IP address is untouched and still reaches the origin host.
//
//   clients --- redirector ---+--- host server   (a_httpd replica)
//                             +--- origin host   (httpd + telnetd)
#include "common/logging.hpp"
#include <cstdio>

#include "apps/http.hpp"
#include "host/network.hpp"
#include "mgmt/host_agent.hpp"
#include "mgmt/redirector_agent.hpp"
#include "redirector/redirector.hpp"

using namespace hydranet;

namespace {
net::Ipv4Address ip4(int a, int b, int c, int d) {
  return net::Ipv4Address(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b),
                          static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(d));
}
}  // namespace

int main() {
  set_log_level(LogLevel::error);
  host::Network net(2026);

  host::Host& client = net.add_host("client");
  host::Host& router = net.add_host("redirector");
  host::Host& host_server = net.add_host("host_server");
  host::Host& origin = net.add_host("origin");

  net.connect(client, ip4(10, 0, 1, 2), router, ip4(10, 0, 1, 1), 24);
  net.connect(router, ip4(10, 0, 2, 1), host_server, ip4(10, 0, 2, 2), 24);
  net.connect(router, ip4(10, 0, 3, 1), origin, ip4(10, 0, 3, 2), 24);
  client.ip().add_default_route(ip4(10, 0, 1, 1), nullptr);
  host_server.ip().add_default_route(ip4(10, 0, 2, 1), nullptr);
  origin.ip().add_default_route(ip4(10, 0, 3, 1), nullptr);

  // The origin host owns the service address 192.20.225.20 for real.
  const net::Ipv4Address service_address = ip4(192, 20, 225, 20);
  origin.ip().add_local_alias(service_address);
  router.ip().add_route(service_address, 32, ip4(10, 0, 3, 2), nullptr);

  // Origin applications: httpd on 80, "telnetd" on 23 (an echo banner).
  apps::HttpServer origin_httpd(
      origin, {.listen_address = service_address, .port = 80,
               .default_body_size = 2048});
  bool telnet_reached_origin = false;
  (void)origin.tcp().listen(
      service_address, 23,
      [&](std::shared_ptr<tcp::TcpConnection> conn) {
        telnet_reached_origin = true;
        std::string banner = "origin login: ";
        (void)conn->send(BytesView(
            reinterpret_cast<const std::uint8_t*>(banner.data()),
            banner.size()));
        conn->close();
      });

  // HydraNet: the redirector + a scaled web replica on the host server.
  redirector::Redirector redirector(router);
  mgmt::RedirectorAgent redirector_agent(router, redirector);
  mgmt::HostAgent agent(host_server, ip4(10, 0, 2, 1));
  agent.install_scaled_replica({service_address, 80});  // the a_httpd entry
  apps::HttpServer replica_httpd(
      host_server, {.listen_address = service_address, .port = 80,
                    .default_body_size = 2048});
  net.run_for(sim::seconds(1));  // registration settles

  std::printf("redirector table: %zu entr%s — %s:80 -> %s\n",
              redirector.table_size(), redirector.table_size() == 1 ? "y" : "ies",
              service_address.to_string().c_str(),
              ip4(10, 0, 2, 2).to_string().c_str());

  // Client A: fetches pages from the service address.
  apps::HttpClient browser(client, {.server = {service_address, 80},
                                    .paths = {"/", "/catalog", "/news",
                                              "/checkout"}});
  (void)browser.start();

  // Client B: telnets to the same IP — port 23 has no redirection entry.
  auto telnet = client.tcp().connect(net::Ipv4Address(),
                                     {service_address, 23});
  std::string telnet_banner;
  telnet.value()->set_on_readable([&] {
    auto data = telnet.value()->recv(1024);
    if (data && !data.value().empty()) {
      telnet_banner.assign(data.value().begin(), data.value().end());
    }
  });

  net.run_for(sim::seconds(20));

  std::printf("\nHTTP (port 80, redirected):\n");
  std::printf("  responses: %zu, verified: %s\n", browser.report().responses,
              browser.report().all_ok ? "yes" : "NO");
  std::printf("  served by the nearby replica: %llu requests "
              "(origin served %llu)\n",
              static_cast<unsigned long long>(replica_httpd.requests_served()),
              static_cast<unsigned long long>(origin_httpd.requests_served()));

  std::printf("\nTelnet (port 23, NOT redirected):\n");
  std::printf("  reached the origin host: %s, banner: \"%s\"\n",
              telnet_reached_origin ? "yes" : "NO", telnet_banner.c_str());

  std::printf("\nredirector: %llu datagrams redirected, %llu passed "
              "through untouched\n",
              static_cast<unsigned long long>(
                  redirector.stats().redirected_datagrams),
              static_cast<unsigned long long>(
                  redirector.stats().passed_through));

  bool ok = browser.report().all_ok && telnet_reached_origin &&
            replica_httpd.requests_served() == 4 &&
            origin_httpd.requests_served() == 0;
  std::printf("\n%s\n", ok ? "Figure 2 scenario reproduced." : "MISMATCH");
  return ok ? 0 : 1;
}
