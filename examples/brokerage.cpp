// The paper's §1/§6 motivation: transaction-based services — "service
// interruptions for an on-line brokerage firm may have very serious
// effects" and "some [applications] are transaction based ... and have
// servers maintain much state.  Plain service request redirection is not
// sufficient to recover from server failures for these classes of
// applications."
//
// A stateful order-execution session (running sequence number and
// position) over a replicated service.  Because every replica deposits the
// same byte stream in the same order, the session state is identical
// everywhere; when the primary dies mid-session, the promoted backup
// continues the session with the exact sequence number and position the
// client expects — something stateless redirection cannot do.
#include "common/logging.hpp"
#include <cstdio>

#include "apps/session.hpp"
#include "apps/ttcp.hpp"
#include "testbed/testbed.hpp"

using namespace hydranet;

int main() {
  set_log_level(LogLevel::error);

  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 3;
  testbed::Testbed bed(config);

  // The brokerage engine runs on both replicas.
  apps::BrokerageServer::Config server_config;
  server_config.listen_address = config.service.address;
  server_config.port = config.service.port;
  server_config.tcp = apps::period_tcp_options();
  apps::BrokerageServer primary_engine(bed.server(0), server_config);
  apps::BrokerageServer backup_engine(bed.server(1), server_config);

  // The trading client places 60 orders, 150 ms apart (a ~9 s session).
  apps::BrokerageClient::Config client_config;
  client_config.server = config.service;
  client_config.think_time = sim::milliseconds(150);
  client_config.tcp = apps::period_tcp_options();
  std::int64_t expected_position = 0;
  for (int i = 1; i <= 60; ++i) {
    std::int64_t qty = (i % 7) - 3;  // buys and sells
    if (qty == 0) qty = 5;
    client_config.orders.push_back(qty);
    expected_position += qty;
  }
  apps::BrokerageClient trader(bed.client(), client_config);
  if (!trader.start().ok()) return 1;

  // Crash the primary a third of the way into the session.
  bed.net().run_for(sim::seconds(3));
  std::printf("t=%.1fs: %zu orders executed; PRIMARY CRASHES mid-session\n",
              bed.net().now().seconds(), trader.report().executions);
  std::size_t executed_before_crash = trader.report().executions;
  bed.crash_server(0);

  bed.net().run_for(sim::seconds(120));

  const auto& report = trader.report();
  std::printf("close reason: %s\n", to_string(report.close_reason));
  std::printf("\nsession %s\n", report.done && !report.failed
                                    ? "completed on the same connection"
                                    : "FAILED");
  std::printf("orders executed: %zu/%zu (%zu before the crash, %zu after)\n",
              report.executions, client_config.orders.size(),
              executed_before_crash,
              report.executions - executed_before_crash);
  std::printf("every EXEC matched the expected session state: %s\n",
              report.consistent ? "yes" : "NO");
  std::printf("final position: %lld (expected %lld), final sequence: %lld\n",
              static_cast<long long>(report.final_position),
              static_cast<long long>(expected_position),
              static_cast<long long>(report.final_sequence));
  std::printf("orders executed by the surviving replica's engine: %llu\n",
              static_cast<unsigned long long>(
                  backup_engine.orders_executed()));

  bool ok = report.done && !report.failed && report.consistent &&
            report.executions == client_config.orders.size() &&
            report.final_position == expected_position;
  std::printf("\n%s\n", ok ? "Stateful fail-over reproduced: the session "
                             "state survived the crash."
                           : "MISMATCH");
  return ok ? 0 : 1;
}
