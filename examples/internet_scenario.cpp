// The paper's Figure 1 scenario, end to end.
//
// Two ISPs share an internetwork: southwest.net and northeast.net.
// northeast.net routes its traffic through a redirector and operates a
// host server.  Two services coexist:
//
//   * www.northwest.com       — a web service, replicated for SCALING:
//                               northeast's clients are served by a nearby
//                               replica on the host server, southwest's
//                               clients go to the origin host directly;
//   * audio.south.com         — a media service, replicated for FAULT
//                               TOLERANCE on the origin host + the host
//                               server; mid-broadcast, the audio origin
//                               host dies and the broadcast continues.
//
//   sw_client --- backbone ---+                +--- host_server
//                             |                |     (web replica + audio backup)
//                          backbone --- redirector
//                             |                |
//   www_origin ---------------+                +--- ne_client
//   audio_origin -------------+
#include "common/logging.hpp"
#include <cstdio>

#include "apps/http.hpp"
#include "apps/stream.hpp"
#include "apps/ttcp.hpp"
#include "host/network.hpp"
#include "mgmt/host_agent.hpp"
#include "mgmt/redirector_agent.hpp"
#include "redirector/redirector.hpp"

using namespace hydranet;

namespace {
net::Ipv4Address ip4(int a, int b, int c, int d) {
  return net::Ipv4Address(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b),
                          static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(d));
}
}  // namespace

int main() {
  set_log_level(LogLevel::error);
  host::Network net(1900);

  // -- topology ------------------------------------------------------------
  host::Host& backbone = net.add_host("backbone");      // core router
  host::Host& redirector_host = net.add_host("redirector");
  host::Host& sw_client = net.add_host("sw_client");    // southwest.net user
  host::Host& ne_client = net.add_host("ne_client");    // northeast.net user
  host::Host& www_origin = net.add_host("www_origin");  // northwest.com
  host::Host& audio_origin = net.add_host("audio_origin");  // south.com
  host::Host& host_server = net.add_host("host_server");    // northeast.net

  link::Link::Config wan;
  wan.propagation = sim::milliseconds(15);  // a real WAN hop
  link::Link::Config lan;

  net.connect(sw_client, ip4(20, 1, 1, 2), backbone, ip4(20, 1, 1, 1), 24, lan);
  net.connect(www_origin, ip4(20, 2, 1, 2), backbone, ip4(20, 2, 1, 1), 24, lan);
  net.connect(audio_origin, ip4(20, 3, 1, 2), backbone, ip4(20, 3, 1, 1), 24, lan);
  net.connect(backbone, ip4(20, 9, 1, 1), redirector_host, ip4(20, 9, 1, 2), 24, wan);
  net.connect(redirector_host, ip4(30, 1, 1, 1), ne_client, ip4(30, 1, 1, 2), 24, lan);
  net.connect(redirector_host, ip4(30, 2, 1, 1), host_server, ip4(30, 2, 1, 2), 24, lan);

  sw_client.ip().add_default_route(ip4(20, 1, 1, 1), nullptr);
  www_origin.ip().add_default_route(ip4(20, 2, 1, 1), nullptr);
  audio_origin.ip().add_default_route(ip4(20, 3, 1, 1), nullptr);
  ne_client.ip().add_default_route(ip4(30, 1, 1, 1), nullptr);
  host_server.ip().add_default_route(ip4(30, 2, 1, 1), nullptr);
  backbone.ip().add_route(ip4(30, 0, 0, 0), 8, ip4(20, 9, 1, 2), nullptr);
  redirector_host.ip().add_default_route(ip4(20, 9, 1, 1), nullptr);

  // Service addresses live on their origin hosts.
  const net::Ipv4Address www = ip4(192, 20, 225, 20);   // www.northwest.com
  const net::Ipv4Address audio = ip4(193, 40, 7, 7);    // audio.south.com
  www_origin.ip().add_local_alias(www);
  audio_origin.ip().add_local_alias(audio);
  backbone.ip().add_route(www, 32, ip4(20, 2, 1, 2), nullptr);
  backbone.ip().add_route(audio, 32, ip4(20, 3, 1, 2), nullptr);

  // -- HydraNet deployment ---------------------------------------------------
  redirector::Redirector redirector(redirector_host);
  mgmt::RedirectorAgent redirector_agent(redirector_host, redirector);
  mgmt::HostAgent host_server_agent(host_server, ip4(30, 2, 1, 1));
  mgmt::HostAgent audio_origin_agent(audio_origin, ip4(20, 9, 1, 2));

  // Web: scaled replica near northeast's clients (no chain).
  host_server_agent.install_scaled_replica({www, 80});
  apps::HttpServer origin_httpd(www_origin,
                                {.listen_address = www, .port = 80});
  apps::HttpServer replica_httpd(host_server,
                                 {.listen_address = www, .port = 80});

  // Audio: fault-tolerant — primary on the origin, backup on the host
  // server, both accessible through the redirector.
  ftcp::DetectorParams detector;
  detector.retransmission_threshold = 3;
  audio_origin_agent.install_replica({audio, 8000}, tcp::ReplicaMode::primary,
                                     detector);
  host_server_agent.install_replica({audio, 8000}, tcp::ReplicaMode::backup,
                                    detector);

  apps::StreamingSource::Config audio_config;
  audio_config.listen_address = audio;
  audio_config.port = 8000;
  audio_config.chunk_size = 1200;
  audio_config.interval = sim::milliseconds(20);
  audio_config.total_bytes = 2 * 1024 * 1024;
  audio_config.tcp = apps::period_tcp_options();
  apps::StreamingSource audio_primary(audio_origin, audio_config);
  apps::StreamingSource audio_backup(host_server, audio_config);

  net.run_for(sim::seconds(2));  // registrations settle
  std::printf("deployed: www (scaled) -> host_server; audio (FT) chain of "
              "%zu replicas\n",
              redirector_agent.chain({audio, 8000}).size());

  // -- clients ---------------------------------------------------------------
  // northeast browser: redirected to the nearby replica.
  apps::HttpClient ne_browser(ne_client,
                              {.server = {www, 80},
                               .paths = {"/home", "/news", "/sports"}});
  (void)ne_browser.start();
  // southwest browser: no redirector on its path — served by the origin.
  apps::HttpClient sw_browser(sw_client,
                              {.server = {www, 80},
                               .paths = {"/home", "/finance"}});
  (void)sw_browser.start();
  // northeast listener tunes into the fault-tolerant audio broadcast.
  apps::StreamingSink::Config listener_config;
  listener_config.server = {audio, 8000};
  listener_config.stall_threshold = sim::milliseconds(250);
  listener_config.tcp = apps::period_tcp_options();
  apps::StreamingSink listener(ne_client, listener_config);
  (void)listener.start();

  net.run_for(sim::seconds(8));
  std::printf("t=%.0fs: audio at %zu bytes; AUDIO ORIGIN HOST DIES\n",
              net.now().seconds(), listener.report().bytes);
  audio_origin.crash();

  net.run_for(sim::seconds(180));

  // -- results ---------------------------------------------------------------
  std::printf("\nweb (scaling):\n");
  std::printf("  northeast browser: %zu/3 responses ok=%s (served by nearby "
              "replica: %llu)\n",
              ne_browser.report().responses,
              ne_browser.report().all_ok ? "yes" : "NO",
              static_cast<unsigned long long>(replica_httpd.requests_served()));
  std::printf("  southwest browser: %zu/2 responses ok=%s (served by origin: "
              "%llu)\n",
              sw_browser.report().responses,
              sw_browser.report().all_ok ? "yes" : "NO",
              static_cast<unsigned long long>(origin_httpd.requests_served()));

  const auto& audio_report = listener.report();
  bool audio_exact =
      audio_report.bytes == audio_config.total_bytes &&
      audio_report.checksum ==
          apps::fnv1a(apps::ttcp_pattern(audio_config.total_bytes, 0));
  std::printf("\naudio (fault tolerance):\n");
  std::printf("  broadcast %s, %zu bytes, byte-exact=%s, worst stall %.0f ms\n",
              audio_report.eof ? "completed" : "INCOMPLETE",
              audio_report.bytes, audio_exact ? "yes" : "NO",
              audio_report.max_gap.millis());
  auto chain = redirector_agent.chain({audio, 8000});
  std::printf("  surviving audio chain: %zu replica (on the host server)\n",
              chain.size());

  bool ok = ne_browser.report().all_ok && sw_browser.report().all_ok &&
            replica_httpd.requests_served() == 3 &&
            origin_httpd.requests_served() == 2 && audio_report.eof &&
            audio_exact && chain.size() == 1;
  std::printf("\n%s\n", ok ? "Figure 1 scenario reproduced." : "MISMATCH");
  return ok ? 0 : 1;
}
