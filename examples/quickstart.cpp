// Quickstart: the smallest useful HydraNet-FT deployment.
//
// One fault-tolerant echo service, replicated on a primary and a backup
// behind a redirector.  A completely stock TCP client connects, talks to
// the service, the primary is crashed mid-conversation — and the client's
// byte stream continues uninterrupted on the same connection.
//
//   client --- redirector ---+--- server1 (primary)
//                            +--- server2 (backup)
#include "common/logging.hpp"
#include <cstdio>

#include "apps/ttcp.hpp"
#include "testbed/testbed.hpp"

using namespace hydranet;

namespace {

/// A replica application: echoes every byte back, with backpressure
/// handling.  The SAME program runs unchanged on primary and backup —
/// replication is entirely the infrastructure's business.
class EchoService {
 public:
  EchoService(host::Host& host, const net::Endpoint& service) {
    (void)host.tcp().listen(
        service.address, service.port,
        [this](std::shared_ptr<tcp::TcpConnection> conn) {
          connection_ = conn;
          auto* raw = conn.get();
          auto flush = [this, raw] {
            while (!backlog_.empty()) {
              auto n = raw->send(backlog_);
              if (!n) return;
              backlog_.erase(backlog_.begin(),
                             backlog_.begin() +
                                 static_cast<std::ptrdiff_t>(n.value()));
            }
            if (eof_) raw->close();
          };
          conn->set_on_writable(flush);
          conn->set_on_readable([this, raw, flush] {
            for (;;) {
              auto data = raw->recv(16 * 1024);
              if (!data) return;
              if (data.value().empty()) {
                eof_ = true;
                if (backlog_.empty()) raw->close();
                return;
              }
              backlog_.insert(backlog_.end(), data.value().begin(),
                              data.value().end());
              flush();
            }
          });
        },
        apps::period_tcp_options());
  }

 private:
  std::shared_ptr<tcp::TcpConnection> connection_;
  Bytes backlog_;
  bool eof_ = false;
};

}  // namespace

int main() {
  set_log_level(LogLevel::warn);  // watch the failure detection happen

  // 1. Stand up the paper's testbed with one backup.  The Testbed helper
  //    builds hosts, links, routing, the redirector, the management
  //    agents, and registers the replicated service end to end.
  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 3;  // snappy failover
  testbed::Testbed bed(config);
  std::printf("service %s deployed on %s (primary) and %s (backup)\n",
              config.service.to_string().c_str(),
              bed.server_address(0).to_string().c_str(),
              bed.server_address(1).to_string().c_str());

  // 2. Run the replica application on both servers.
  EchoService primary_app(bed.server(0), config.service);
  EchoService backup_app(bed.server(1), config.service);

  // 3. A stock TCP client: connect, stream data, verify the echo.
  auto client =
      bed.client().tcp().connect(net::Ipv4Address(), config.service,
                                 apps::period_tcp_options());
  if (!client.ok()) {
    std::printf("connect failed\n");
    return 1;
  }
  auto conn = client.value();

  const std::size_t total = 512 * 1024;
  Bytes echoed;
  std::size_t written = 0;
  auto pump = [&] {
    while (written < total) {
      std::size_t n = std::min<std::size_t>(total - written, 4096);
      Bytes chunk = apps::ttcp_pattern(n, written);
      auto accepted = conn->send(chunk);
      if (!accepted) break;
      written += accepted.value();
    }
  };
  conn->set_on_established([&] {
    std::printf("client connected to %s — one ordinary TCP connection\n",
                config.service.to_string().c_str());
    pump();
  });
  conn->set_on_writable(pump);
  conn->set_on_readable([&] {
    for (;;) {
      auto data = conn->recv(64 * 1024);
      if (!data || data.value().empty()) return;
      echoed.insert(echoed.end(), data.value().begin(), data.value().end());
      if (echoed.size() >= total) conn->close();
    }
  });

  // 4. Let a third of the conversation happen, then kill the primary.
  bed.net().run_for(sim::milliseconds(600));
  std::printf("t=%.2fs: %zu/%zu bytes echoed; CRASHING THE PRIMARY\n",
              bed.net().now().seconds(), echoed.size(), total);
  bed.crash_server(0);

  // 5. Keep running: the failure estimator trips on the client's
  //    retransmissions, the redirector probes, eliminates the dead
  //    primary, promotes the backup — and the byte stream resumes.
  bed.net().run_for(sim::seconds(60));

  bool intact = echoed == apps::ttcp_pattern(total, 0);
  std::printf("t=%.2fs: %zu/%zu bytes echoed, stream intact: %s\n",
              bed.net().now().seconds(), echoed.size(), total,
              intact ? "YES" : "NO");
  std::printf("client stats: %llu retransmits, %llu timeouts, 0 resets — "
              "the failover was invisible above TCP\n",
              static_cast<unsigned long long>(conn->stats().retransmits),
              static_cast<unsigned long long>(conn->stats().timeouts));
  auto chain = bed.redirector_agent().chain(config.service);
  std::printf("surviving chain: %zu replica(s), primary now %s\n",
              chain.size(),
              chain.empty() ? "-" : chain.front().to_string().c_str());
  return intact && echoed.size() == total ? 0 : 1;
}
