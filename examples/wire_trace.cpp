// Watch HydraNet-FT on the wire.
//
// Attaches packet traces (tcpdump-style) to every link of the testbed and
// prints annotated excerpts of the three moments that define the system:
//
//   1. the three-way handshake, fanned out by the redirector to both
//      replicas (IP-in-IP), with only the primary's SYN-ACK reaching the
//      client;
//   2. steady-state data flow: client data multicast to the chain, the
//      backup's acknowledgement-channel reports (UDP) trailing it, the
//      primary's ACKs closing the loop;
//   3. fail-over: the primary dies, the client retransmits into silence,
//      the management protocol probes and rewires, and the promoted
//      backup answers — same connection, same sequence numbers.
#include "common/logging.hpp"
#include <cstdio>

#include "apps/ttcp.hpp"
#include "testbed/testbed.hpp"
#include "trace/packet_trace.hpp"

using namespace hydranet;

namespace {

void print_excerpt(const char* title, const std::vector<trace::TraceEntry>& entries,
                   std::size_t from, std::size_t count) {
  std::printf("\n-- %s --\n", title);
  for (std::size_t i = from; i < entries.size() && i < from + count; ++i) {
    std::printf("%s\n", entries[i].to_string().c_str());
  }
}

}  // namespace

int main() {
  set_log_level(LogLevel::error);

  testbed::TestbedConfig config;
  config.setup = testbed::Setup::primary_backup;
  config.backups = 1;
  config.detector.retransmission_threshold = 3;
  testbed::Testbed bed(config);

  trace::PacketTrace client_side(bed.scheduler());
  client_side.attach(bed.client_link(), "cli-rd");
  trace::PacketTrace primary_side(bed.scheduler());
  primary_side.attach(bed.server_link(0), "rd-s1");
  trace::PacketTrace backup_side(bed.scheduler());
  backup_side.attach(bed.server_link(1), "rd-s2");

  apps::TtcpReceiver rx0(bed.server(0), config.service.address,
                         config.service.port);
  apps::TtcpReceiver rx1(bed.server(1), config.service.address,
                         config.service.port);
  apps::TtcpTransmitter::Config tx;
  tx.server = config.service;
  tx.total_bytes = 3 * 1024 * 1024;
  tx.write_size = 1024;
  apps::TtcpTransmitter transmitter(bed.client(), tx);
  if (!transmitter.start().ok()) return 1;

  bed.net().run_for(sim::milliseconds(30));
  std::printf("== 1. handshake ==\n");
  print_excerpt("client link: SYN out, exactly one SYN-ACK back",
                client_side.entries(), 0, 4);
  print_excerpt("backup link: the tunnelled copy arrives; the backup's "
                "SYN-ACK is swallowed (nothing flows back but the UDP "
                "acknowledgement channel)",
                backup_side.entries(), 0, 4);

  // Steady state.
  bed.net().run_for(sim::seconds(1));
  std::printf("\n== 2. steady state (one window's worth) ==\n");
  std::size_t mark = backup_side.entries().size();
  bed.net().run_for(sim::milliseconds(12));
  print_excerpt("backup link: tunnelled data in, UDP reports (port 5999) out",
                backup_side.entries(), mark, 8);

  // Fail-over.
  std::size_t client_mark = client_side.entries().size();
  std::printf("\n== 3. fail-over: crashing the primary ==\n");
  bed.crash_server(0);
  bed.net().run_for(sim::seconds(60));

  // Find the retransmission-into-silence followed by the resumed ACKs.
  const auto& entries = client_side.entries();
  std::size_t resume = client_mark;
  for (std::size_t i = client_mark + 1; i < entries.size(); ++i) {
    double gap = (entries[i].at - entries[i - 1].at).seconds();
    if (gap > 1.0) resume = i;  // the last long silence ends here
  }
  std::size_t from = resume > 3 ? resume - 3 : 0;
  print_excerpt("client link around the fail-over: retransmissions into "
                "silence, then the promoted backup answers (same 4-tuple, "
                "same sequence space)",
                entries, from, 8);

  bool finished = transmitter.report().finished;
  std::printf("\ntransfer %s; receiver-side bytes: primary(dead)=%zu, "
              "backup(now primary)=%zu\n",
              finished ? "finished" : "INCOMPLETE", rx0.total_bytes(),
              rx1.total_bytes());
  std::printf("capture sizes: client link %zu frames, primary link %zu, "
              "backup link %zu\n",
              client_side.entries().size(), primary_side.entries().size(),
              backup_side.entries().size());
  return finished ? 0 : 1;
}
